package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
)

// waitStatus polls a job until cond holds (or the deadline fails the test).
func waitStatus(t *testing.T, job *Job, what string, cond func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := job.Status()
		if cond(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s: %+v", job.ID(), what, job.Status())
	return Status{}
}

// TestRecoverRequeuesInFlightJob is the crash-recovery mechanics test: a
// coordinator with a journal and a disk cache is wedged mid-sweep
// (emulating kill -9 — the manager is simply abandoned, its journal never
// closed), a second manager reopens the same journal and cache, and the
// in-flight job must resume under its original id, serve its completed
// cells from the cache, and simulate only the cells that were in flight.
func TestRecoverRequeuesInFlightJob(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	cacheDir := filepath.Join(dir, "cache")

	// Calls 1 (jobA) and 2-3 (jobB cells 1-2) complete instantly; call 4
	// (jobB cell 3) wedges, pinning the "crash" mid-sweep.
	var calls atomic.Int64
	gate := make(chan struct{})
	wedgedRun := func(cfg config.Config, w string) (stats.Report, error) {
		if calls.Add(1) > 3 {
			<-gate
		}
		return fakeRun(cfg, w)
	}

	dc1, err := batch.NewDiskCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	j1, replayed, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replayed))
	}
	runner1 := &batch.Runner{Workers: 1, Cache: dc1, RunFn: wedgedRun}
	m1 := NewManager(runner1, 1, 8)
	m1.Journal = j1
	t.Cleanup(func() {
		close(gate) // un-wedge the abandoned manager's goroutines
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m1.Shutdown(ctx)
	})

	jobA, err := m1.SubmitAs("alice", Request{Spec: specOf(t, `{"platforms":["oracle"],"modes":["planar"],"workloads":["lud"]}`)})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, jobA, "done", func(st Status) bool { return st.State == StateDone })

	jobB, err := m1.SubmitAs("bob", Request{Spec: specOf(t, `{"platforms":["ohm-base"],"modes":["planar"],"workloads":["lud","sssp","pagerank","bfstopo"]}`)})
	if err != nil {
		t.Fatal(err)
	}
	// Two cells complete (and hit the disk cache); the third is wedged.
	waitStatus(t, jobB, "2 cells done", func(st Status) bool { return st.CellsDone == 2 })

	// "kill -9": abandon m1 without shutdown. Its journal stays open but
	// the wedge guarantees it writes nothing more.
	j2, replayed, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(replayed))
	}
	if !replayed[0].Terminal() || replayed[0].State != StateDone || replayed[0].Tenant != "alice" {
		t.Fatalf("jobA replayed as %+v", replayed[0])
	}
	if replayed[1].Terminal() || replayed[1].Tenant != "bob" {
		t.Fatalf("jobB replayed as %+v", replayed[1])
	}

	// Restart: fresh runner over the same cache directory, no wedge, and
	// a fresh-sim counter to prove near-zero recomputation.
	var fresh atomic.Int64
	dc2, err := batch.NewDiskCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	runner2 := &batch.Runner{Workers: 2, Cache: dc2, RunFn: func(cfg config.Config, w string) (stats.Report, error) {
		fresh.Add(1)
		return fakeRun(cfg, w)
	}}
	m2 := NewManager(runner2, 1, 8)
	m2.Journal = j2
	m2.Admission = NewAdmission(AdmissionConfig{MaxJobs: 8})
	m2.Recover(replayed)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m2.Shutdown(ctx)
		j2.Close()
	})

	// jobA is terminal history: status intact, marked replayed, no payload.
	gotA, ok := m2.Get(jobA.ID())
	if !ok {
		t.Fatalf("terminal job %s lost in replay", jobA.ID())
	}
	stA := gotA.Status()
	if stA.State != StateDone || !stA.Replayed || stA.Tenant != "alice" {
		t.Fatalf("jobA after replay = %+v", stA)
	}
	if gotA.hasResult() {
		t.Fatal("replayed terminal job claims a result payload")
	}

	// jobB re-queued under its original id and completes: the two cells
	// done before the crash come from the cache, only the two cells that
	// were in flight (or unstarted) simulate.
	gotB, ok := m2.Get(jobB.ID())
	if !ok {
		t.Fatalf("in-flight job %s lost in replay", jobB.ID())
	}
	stB := waitStatus(t, gotB, "done after replay", func(st Status) bool { return st.State.Terminal() })
	if stB.State != StateDone {
		t.Fatalf("replayed job = %+v", stB)
	}
	if !stB.Replayed || stB.Tenant != "bob" {
		t.Fatalf("replayed job lost identity: %+v", stB)
	}
	if stB.CacheHits != 2 || stB.Simulated != 2 {
		t.Fatalf("replayed job hits=%d sim=%d, want 2 and 2 (crash-completed cells must come from cache)",
			stB.CacheHits, stB.Simulated)
	}
	if got := fresh.Load(); got != 2 {
		t.Fatalf("restart simulated %d cells fresh, want 2", got)
	}

	// The id sequence resumes past the replayed ids.
	jobC, err := m2.Submit(Request{Spec: specOf(t, `{"platforms":["oracle"],"modes":["planar"],"workloads":["sssp"]}`)})
	if err != nil {
		t.Fatal(err)
	}
	if jobC.ID() <= jobB.ID() {
		t.Fatalf("post-replay id %s did not advance past %s", jobC.ID(), jobB.ID())
	}

	// The replayed-done job's result endpoint answers 410 with the
	// machine-readable reason (payloads don't survive restarts; a warm
	// resubmit recomputes byte-identically from the cache).
	ts := httptest.NewServer(NewHandler(m2))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobA.ID() + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("replayed result = %d, want 410", resp.StatusCode)
	}
	var ru resultUnavailable
	if err := json.NewDecoder(resp.Body).Decode(&ru); err != nil {
		t.Fatal(err)
	}
	if ru.Reason != ReasonResultLost || ru.State != StateDone {
		t.Fatalf("410 body = %+v", ru)
	}
}

// specOf parses a SweepSpec literal.
func specOf(t *testing.T, s string) *batch.SweepSpec {
	t.Helper()
	var spec batch.SweepSpec
	if err := json.Unmarshal([]byte(s), &spec); err != nil {
		t.Fatal(err)
	}
	return &spec
}

// TestRecoverGoldenByteIdentity is the acceptance test from the issue: a
// real fig16 -quick experiment is killed mid-sweep (coordinator wedged
// with three cells done), restarted on the same journal + cache
// directory, and the replayed job must complete with the exact bytes the
// golden corpus pins — serving the crash-completed cells from the cache
// and simulating only the rest.
func TestRecoverGoldenByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation (seconds) in -short mode")
	}
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	cacheDir := filepath.Join(dir, "cache")

	// First three cells simulate for real; the fourth wedges mid-flight.
	var calls atomic.Int64
	gate := make(chan struct{})
	dc1, err := batch.NewDiskCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	runner1 := batch.NewRunner(4, dc1)
	runner1.RunFn = func(cfg config.Config, w string) (stats.Report, error) {
		if calls.Add(1) > 3 {
			<-gate
		}
		return core.RunConfig(cfg, w)
	}
	j1, _, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(runner1, 1, 4)
	m1.Journal = j1
	t.Cleanup(func() {
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m1.Shutdown(ctx)
	})

	job, err := m1.Submit(Request{Experiment: "fig16", Params: experiments.Params{Quick: true}})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, job, "3 cells done", func(st Status) bool { return st.CellsDone >= 3 })

	// "kill -9", then restart on the same data dir with a clean runner
	// (default simulation path — byte-identity must not depend on the
	// wedge wrapper).
	j2, replayed, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	dc2, err := batch.NewDiskCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	runner2 := batch.NewRunner(4, dc2)
	m2 := NewManager(runner2, 1, 4)
	m2.Journal = j2
	m2.Recover(replayed)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		m2.Shutdown(ctx)
		j2.Close()
	})

	got, ok := m2.Get(job.ID())
	if !ok {
		t.Fatalf("job %s not replayed", job.ID())
	}
	st := waitStatus(t, got, "done after replay", func(st Status) bool { return st.State.Terminal() })
	if st.State != StateDone {
		t.Fatalf("replayed job = %+v", st)
	}
	// The cells completed before the crash must not re-simulate:
	// simulated ≈ only what was in flight or unstarted at the kill.
	if st.CacheHits < 3 {
		t.Fatalf("cache hits = %d, want >= 3 (crash-completed cells recomputed)", st.CacheHits)
	}
	if st.Simulated > st.CellsTotal-3 {
		t.Fatalf("simulated %d of %d cells after replay, want <= %d",
			st.Simulated, st.CellsTotal, st.CellsTotal-3)
	}

	ts := httptest.NewServer(NewHandler(m2))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID() + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d", resp.StatusCode)
	}
	gotBytes, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "fig16.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytesEqual(gotBytes, want) {
		t.Fatalf("replayed result diverges from golden corpus (%d vs %d bytes)", len(gotBytes), len(want))
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRecoverReplaysCombinedModeJob is the regression for the
// analytical-mode replay bug class: a combined-mode sweep (DES rows plus
// "+analytical" rows) wedged mid-sweep must come back from the journal
// with its execution modes intact. Cell.Exec and SweepSpec.Execs are
// json:"-" — the modes survive only because the spec folds them into the
// wire "modes" tokens ("planar+analytical") — so a serialization slip
// here would silently replay the analytical half of the grid through the
// event simulator and produce wrong (and 1000x slower) rows under the
// analytical label.
func TestRecoverReplaysCombinedModeJob(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.jsonl")
	cacheDir := filepath.Join(dir, "cache")

	// Cell order is mode-major: [DES lud, DES sssp, ANA lud, ANA sssp]
	// on one worker. The first DES cell completes (and lands in the disk
	// cache); the second wedges; the analytical cells never start before
	// the "crash".
	var calls atomic.Int64
	gate := make(chan struct{})
	wedgedRun := func(cfg config.Config, w string) (stats.Report, error) {
		if calls.Add(1) > 1 {
			<-gate
		}
		return fakeRun(cfg, w)
	}
	dc1, err := batch.NewDiskCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	j1, replayed, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("fresh journal replayed %d jobs", len(replayed))
	}
	runner1 := &batch.Runner{Workers: 1, Cache: dc1, RunFn: wedgedRun}
	m1 := NewManager(runner1, 1, 8)
	m1.Journal = j1
	t.Cleanup(func() {
		close(gate)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m1.Shutdown(ctx)
	})

	spec := `{"platforms":["ohm-base"],"modes":["planar","planar+analytical"],"workloads":["lud","sssp"]}`
	job, err := m1.SubmitAs("carol", Request{Spec: specOf(t, spec)})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, job, "1 cell done", func(st Status) bool { return st.CellsDone == 1 })

	// "kill -9": abandon m1, reopen the journal cold.
	j2, replayed, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(replayed))
	}

	var freshDES atomic.Int64
	dc2, err := batch.NewDiskCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	runner2 := &batch.Runner{Workers: 2, Cache: dc2, RunFn: func(cfg config.Config, w string) (stats.Report, error) {
		freshDES.Add(1)
		return fakeRun(cfg, w)
	}}
	m2 := NewManager(runner2, 1, 8)
	m2.Journal = j2
	m2.Recover(replayed)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m2.Shutdown(ctx)
		j2.Close()
	})

	got, ok := m2.Get(job.ID())
	if !ok {
		t.Fatalf("in-flight combined-mode job %s lost in replay", job.ID())
	}
	// The re-prepared request must carry the original execution modes.
	// Execs is json:"-", so this survives only through the wire "modes"
	// tokens — if the journal round-trip dropped them, both entries
	// would be DES.
	if rs := got.req.Spec; rs == nil || len(rs.Execs) != 2 || rs.Execs[1] != config.ExecAnalytical {
		t.Fatalf("replayed spec execs = %+v, want [des analytical] (exec modes lost in the journal round-trip)", got.req.Spec)
	}

	st := waitStatus(t, got, "done after replay", func(st Status) bool { return st.State.Terminal() })
	// The executed grid carried the modes through to the cells: two DES,
	// two analytical (terminal jobs keep their cells for the result
	// encoder, so this is safe to read now).
	var ana int
	for _, c := range got.cells {
		if c.Exec == config.ExecAnalytical {
			ana++
		}
	}
	if ana != 2 {
		t.Fatalf("replayed grid ran %d analytical cells, want 2", ana)
	}
	if st.State != StateDone {
		t.Fatalf("replayed combined-mode job = %+v", st)
	}
	// The crash-completed DES cell comes from the cache; the other DES
	// cell simulates; both analytical cells estimate through the twin —
	// never through RunFn.
	if st.CacheHits != 1 || st.Simulated != 3 {
		t.Fatalf("replayed job hits=%d sim=%d, want 1 and 3", st.CacheHits, st.Simulated)
	}
	if got := freshDES.Load(); got != 1 {
		t.Fatalf("restart ran %d cells through RunFn, want 1 (analytical cells must use the twin)", got)
	}
	if st.Timing == nil || st.Timing.AnalyticalCells != 2 {
		t.Fatalf("replayed job timing = %+v, want analytical_cells=2", st.Timing)
	}
	if rs := runner2.Stats(); rs.Analytical != 2 {
		t.Fatalf("runner resolved %d analytical cells after replay, want 2", rs.Analytical)
	}
}
