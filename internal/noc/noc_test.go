package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Ports: 0, FlitBytes: 32, FreqHz: 1e9}); err == nil {
		t.Fatal("accepted zero ports")
	}
	if _, err := New(Config{Ports: 1, FlitBytes: 0, FreqHz: 1e9}); err == nil {
		t.Fatal("accepted zero flit bytes")
	}
	if _, err := New(Config{Ports: 1, FlitBytes: 32, FreqHz: 0}); err == nil {
		t.Fatal("accepted zero frequency")
	}
}

func TestZeroLoadLatency(t *testing.T) {
	cfg := Default()
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One 32-byte message: hop latency + one flit.
	done := x.Traverse(0, 0, 32, 128)
	want := cfg.HopLatency + sim.FreqToPeriod(cfg.FreqHz)
	if done != want {
		t.Fatalf("zero-load traversal %s, want %s", done, want)
	}
}

func TestPortContention(t *testing.T) {
	x, _ := New(Default())
	// Two messages to the same port serialize; to different ports they don't.
	d1 := x.Traverse(0, 0, 128, 128)
	d2 := x.Traverse(0, 0, 128, 128) // same line -> same port
	if d2 <= d1 {
		t.Fatalf("same-port messages overlapped: %s <= %s", d2, d1)
	}
	d3 := x.Traverse(0, 128, 128, 128) // next line -> next port
	if d3 != d1 {
		t.Fatalf("different ports should not contend: %s vs %s", d3, d1)
	}
}

func TestPortRouting(t *testing.T) {
	x, _ := New(Default())
	seen := map[int]bool{}
	for line := 0; line < 6; line++ {
		seen[x.port(uint64(line*128), 128)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("6 consecutive lines should cover all 6 ports, covered %d", len(seen))
	}
}

func TestUtilization(t *testing.T) {
	x, _ := New(Default())
	if x.Utilization(0) != 0 {
		t.Fatal("zero elapsed must yield 0")
	}
	x.Traverse(0, 0, 1024, 128)
	if x.Utilization(sim.Microsecond) <= 0 {
		t.Fatal("traffic must register utilization")
	}
	if x.Traversals != 1 {
		t.Fatalf("traversals = %d", x.Traversals)
	}
}

// Property: traversal completion is never earlier than hop latency + one
// flit, and same-port traversals never overlap.
func TestTraversalProperty(t *testing.T) {
	cfg := Default()
	minDur := cfg.HopLatency + sim.FreqToPeriod(cfg.FreqHz)
	f := func(sizes []uint16) bool {
		x, _ := New(cfg)
		var last sim.Time
		at := sim.Time(0)
		for _, sz := range sizes {
			done := x.Traverse(at, 0, int(sz%512)+1, 128) // all to port 0
			if done < at+minDur {
				return false
			}
			if done <= last {
				return false
			}
			last = done
			at += 10
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
