// Package noc models the GPU's on-chip interconnect network between the
// SMs and the shared L2 (Figure 2's "interconnect network"). The default
// GPU model charges a constant hop latency; this package provides the
// contention-aware alternative: a crossbar with per-port serialization, so
// bursts of misses from many SMs queue at the L2-side ports. It is
// config-gated (GPUConfig.NoCDetailed) because the published calibration
// uses the constant-latency model; the ablation quantifies the difference.
package noc

import (
	"fmt"

	"repro/internal/sim"
)

// Config sizes the crossbar.
type Config struct {
	// Ports is the number of L2-side ports (typically one per L2 slice /
	// memory controller).
	Ports int
	// HopLatency is the zero-load traversal latency (one direction).
	HopLatency sim.Time
	// FlitBytes is the link width per cycle.
	FlitBytes int
	// FreqHz is the network clock.
	FreqHz float64
}

// Default returns a crossbar matching the Table I GPU: 6 L2-side ports at
// the core clock, 32-byte flits, 20 ns zero-load hop.
func Default() Config {
	return Config{Ports: 6, HopLatency: 20 * sim.Nanosecond, FlitBytes: 32, FreqHz: 1.2e9}
}

// Crossbar is the contention-aware interconnect.
type Crossbar struct {
	cfg      Config
	ports    []*sim.GapResource
	flitTime sim.Time

	Traversals uint64
}

// New builds the crossbar.
func New(cfg Config) (*Crossbar, error) {
	return NewIn(nil, nil, cfg)
}

func portName(_ string, i int) string { return fmt.Sprintf("noc-port%d", i) }

// NewIn is New rebuilding into a recycled crossbar with port resources
// drawn from pools; re and pools may both be nil (New is NewIn(nil, nil,
// cfg)), so fresh and pooled construction share one code path.
func NewIn(re *Crossbar, pools *sim.Pools, cfg Config) (*Crossbar, error) {
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("noc: need at least one port, got %d", cfg.Ports)
	}
	if cfg.FlitBytes <= 0 || cfg.FreqHz <= 0 {
		return nil, fmt.Errorf("noc: flit bytes and frequency must be positive")
	}
	if re == nil {
		re = &Crossbar{}
	}
	ports := re.ports
	if cap(ports) < cfg.Ports {
		ports = make([]*sim.GapResource, cfg.Ports)
	} else {
		ports = ports[:cfg.Ports]
	}
	*re = Crossbar{cfg: cfg, flitTime: sim.FreqToPeriod(cfg.FreqHz), ports: ports}
	for i := range ports {
		ports[i] = pools.GapResource(pools.Name("noc-port", i, portName))
	}
	return re, nil
}

// port routes an address to its L2-side port (line-interleaved like the L2
// slices themselves).
func (x *Crossbar) port(addr uint64, lineBytes int) int {
	return int(addr / uint64(lineBytes) % uint64(len(x.ports)))
}

// Traverse moves n bytes toward addr's L2 port starting at time at and
// returns when the message has fully arrived: hop latency plus the flit
// serialization on the destination port, queued behind other traffic.
func (x *Crossbar) Traverse(at sim.Time, addr uint64, n, lineBytes int) sim.Time {
	p := x.ports[x.port(addr, lineBytes)]
	flits := (n + x.cfg.FlitBytes - 1) / x.cfg.FlitBytes
	if flits < 1 {
		flits = 1
	}
	dur := sim.Time(flits) * x.flitTime
	_, end := p.Reserve(at+x.cfg.HopLatency, dur)
	x.Traversals++
	return end
}

// Utilization returns the mean port utilization over an elapsed window.
func (x *Crossbar) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 || len(x.ports) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range x.ports {
		sum += p.Utilization(elapsed)
	}
	return sum / float64(len(x.ports))
}
