package ssd

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestStageLatencyFloor(t *testing.T) {
	d := New(Default(), nil)
	done := d.Stage(0, 4096, false)
	cfg := Default()
	if done < cfg.ReadLatency+cfg.DMASetup {
		t.Fatalf("stage done %s, below latency floor", done)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	cfg := Default()
	r := New(cfg, nil).Stage(0, 1<<20, false)
	w := New(cfg, nil).Stage(0, 1<<20, true)
	if w <= r {
		t.Fatalf("write (%s) should be slower than read (%s)", w, r)
	}
}

func TestBandwidthDominatesLargeTransfers(t *testing.T) {
	cfg := Default()
	d := New(cfg, nil)
	n := int64(64 << 20) // 64 MiB
	done := d.Stage(0, n, false)
	flashTime := sim.Time(float64(n) / cfg.BandwidthBps * 1e12)
	if done < flashTime {
		t.Fatalf("64MiB staged in %s, faster than flash bandwidth alone (%s)", done, flashTime)
	}
}

func TestPipelineSerializesOnFlash(t *testing.T) {
	d := New(Default(), nil)
	d1 := d.Stage(0, 1<<20, false)
	d2 := d.Stage(0, 1<<20, false)
	if d2 <= d1 {
		t.Fatal("second stage must queue behind the first on the flash")
	}
}

func TestAccounting(t *testing.T) {
	col := stats.NewCollector()
	d := New(Default(), col)
	d.Stage(0, 1000, false)
	if col.HostBytes != 1000 {
		t.Fatalf("host bytes = %d", col.HostBytes)
	}
	if col.StorageTime <= 0 || col.HostTime <= 0 {
		t.Fatal("storage/DMA time not accounted")
	}
	if col.EnergyPJ["dma"] != 1000*8*Default().PJPerBit {
		t.Fatalf("dma energy = %v", col.EnergyPJ["dma"])
	}
	if d.FlashBusy() <= 0 || d.DMABusy() <= 0 {
		t.Fatal("busy accounting missing")
	}
}
