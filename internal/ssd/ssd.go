// Package ssd models the external storage of the Figure 3 motivation study:
// a GPU–SSD integrated system in which working sets exceeding GPU memory
// are staged over a PCIe DMA engine from a low-latency SSD. The paper used
// a real Samsung Z-NAND testbed; we model first-order latency/bandwidth
// behaviour, which is all the execution-time breakdown depends on.
package ssd

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parametrises the storage path.
type Config struct {
	// ReadLatency is the SSD's internal access latency per command
	// (Z-NAND-class, ~20 us).
	ReadLatency sim.Time
	// WriteLatency per command.
	WriteLatency sim.Time
	// BandwidthBps is the device's streaming bandwidth.
	BandwidthBps float64
	// DMABandwidthBps is the PCIe DMA bandwidth between host/SSD and GPU.
	DMABandwidthBps float64
	// DMASetup is per-transfer DMA programming overhead.
	DMASetup sim.Time
	// PJPerBit is the DMA transfer energy.
	PJPerBit float64
}

// Default returns a Z-NAND + PCIe 3.0 x16 class configuration.
func Default() Config {
	return Config{
		ReadLatency:     20 * sim.Microsecond,
		WriteLatency:    30 * sim.Microsecond,
		BandwidthBps:    3.2e9,  // 3.2 GB/s streaming
		DMABandwidthBps: 12.8e9, // PCIe 3.0 x16 effective
		DMASetup:        5 * sim.Microsecond,
		PJPerBit:        50,
	}
}

// Device is the SSD + DMA pipeline.
type Device struct {
	cfg   Config
	col   *stats.Collector
	flash *sim.Resource
	dma   *sim.Resource
}

// New builds the device; col may be nil.
func New(cfg Config, col *stats.Collector) *Device {
	return &Device{
		cfg:   cfg,
		col:   col,
		flash: sim.NewResource("ssd-flash"),
		dma:   sim.NewResource("ssd-dma"),
	}
}

// Stage moves n bytes between the SSD and GPU memory (direction only
// affects latency). It returns when the data is resident on the other side,
// and accounts the storage and DMA time separately, matching Figure 3a's
// "Storage" and "Data move" bars.
func (d *Device) Stage(at sim.Time, n int64, write bool) (done sim.Time) {
	lat := d.cfg.ReadLatency
	if write {
		lat = d.cfg.WriteLatency
	}
	flashDur := lat + sim.Time(float64(n)/d.cfg.BandwidthBps*1e12)
	_, flashDone := d.flash.Reserve(at, flashDur)

	dmaDur := d.cfg.DMASetup + sim.Time(float64(n)/d.cfg.DMABandwidthBps*1e12)
	_, done = d.dma.Reserve(flashDone, dmaDur)

	if d.col != nil {
		d.col.StorageTime += flashDur
		d.col.HostTime += dmaDur
		d.col.HostBytes += uint64(n)
		d.col.AddEnergy("dma", float64(n)*8*d.cfg.PJPerBit)
	}
	return done
}

// FlashBusy and DMABusy expose occupancy for breakdown reports.
func (d *Device) FlashBusy() sim.Time { return d.flash.Busy() }

// DMABusy returns DMA engine occupancy.
func (d *Device) DMABusy() sim.Time { return d.dma.Busy() }
