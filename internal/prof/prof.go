// Package prof wires the standard -cpuprofile / -memprofile flags into the
// CLIs (cmd/ohmsim, cmd/ohmbatch) so perf work can capture pprof profiles
// of real runs without a test harness.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpuPath is non-empty) and returns a stop
// function that ends it and writes a heap profile (if memPath is non-empty).
// The stop function must run before process exit for either profile to be
// complete and is safe to call when both paths are empty.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			}
		}
	}, nil
}
