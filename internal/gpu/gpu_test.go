package gpu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// fixedMem is a MemAccessor with constant latency, for isolating GPU logic.
type fixedMem struct {
	lat      sim.Time
	accesses uint64
	writes   uint64
}

func (m *fixedMem) Access(at sim.Time, addr uint64, write bool) sim.Time {
	m.accesses++
	if write {
		m.writes++
	}
	return at + m.lat
}

func cfg() config.Config {
	c := config.Default(config.Oracle, config.Planar)
	c.MaxInstructions = 1000
	return c
}

func mkGPU(t *testing.T, c *config.Config, mem MemAccessor) *GPU {
	t.Helper()
	g, err := New(c, stats.NewCollector(), mem)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func computeTrace(c *config.Config, n int) *trace.Trace {
	nw := c.GPU.SMs * c.GPU.WarpsPerSM
	tr := &trace.Trace{Name: "compute", PageBytes: c.Memory.PageBytes}
	for i := 0; i < nw; i++ {
		wt := make(trace.WarpTrace, n)
		for j := range wt {
			wt[j] = trace.Instr{Kind: trace.Compute}
		}
		tr.Warps = append(tr.Warps, wt)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	c := cfg()
	col := stats.NewCollector()
	if _, err := New(&c, col, nil); err == nil {
		t.Fatal("accepted nil memory")
	}
	if _, err := New(&c, nil, &fixedMem{}); err == nil {
		t.Fatal("accepted nil collector")
	}
	bad := cfg()
	bad.GPU.SMs = 0
	if _, err := New(&bad, col, &fixedMem{}); err == nil {
		t.Fatal("accepted invalid config")
	}
}

func TestComputeOnlyIPC(t *testing.T) {
	c := cfg()
	col := stats.NewCollector()
	g, _ := New(&c, col, &fixedMem{lat: 100 * sim.Nanosecond})
	n := 500
	elapsed := g.Run(computeTrace(&c, n))
	// Each SM issues 1 instr/cycle; WarpsPerSM warps of n instructions
	// serialize on the issue port: elapsed = WarpsPerSM*n cycles.
	wantCycles := int64(c.GPU.WarpsPerSM * n)
	cycles := int64(elapsed) / int64(sim.FreqToPeriod(c.GPU.CoreFreqHz))
	if cycles < wantCycles || cycles > wantCycles+10 {
		t.Fatalf("compute-only elapsed %d cycles, want about %d", cycles, wantCycles)
	}
	wantInstr := uint64(c.GPU.SMs * c.GPU.WarpsPerSM * n)
	if col.Instructions != wantInstr {
		t.Fatalf("instructions = %d, want %d", col.Instructions, wantInstr)
	}
	ipc := col.IPC(elapsed, c.GPU.CoreFreqHz)
	// Per-GPU IPC = SMs (each sustaining 1/cycle).
	if ipc < float64(c.GPU.SMs)*0.9 || ipc > float64(c.GPU.SMs)*1.1 {
		t.Fatalf("IPC = %.2f, want about %d", ipc, c.GPU.SMs)
	}
}

func TestMemoryLatencyHiding(t *testing.T) {
	// With many warps, a long memory latency is overlapped: elapsed grows
	// far less than latency x misses.
	c := cfg()
	mem := &fixedMem{lat: 1 * sim.Microsecond}
	g := mkGPU(t, &c, mem)

	nw := c.GPU.SMs * c.GPU.WarpsPerSM
	tr := &trace.Trace{Name: "mem", PageBytes: c.Memory.PageBytes}
	perWarp := 20
	for i := 0; i < nw; i++ {
		wt := make(trace.WarpTrace, perWarp)
		for j := range wt {
			// Distinct lines per warp and step: all L1/L2 misses.
			addr := uint64(i*perWarp+j) * uint64(c.GPU.LineBytes) * 1024
			wt[j] = trace.Instr{Kind: trace.Load, Addr: addr}
		}
		tr.Warps = append(tr.Warps, wt)
	}
	elapsed := g.Run(tr)
	serial := sim.Time(perWarp) * mem.lat * sim.Time(c.GPU.WarpsPerSM)
	if elapsed >= serial {
		t.Fatalf("no latency hiding: elapsed %s >= serial %s", elapsed, serial)
	}
	if elapsed < sim.Time(perWarp)*mem.lat {
		t.Fatalf("elapsed %s below one warp's serial chain", elapsed)
	}
}

func TestL1CapturesLocality(t *testing.T) {
	c := cfg()
	mem := &fixedMem{lat: 100 * sim.Nanosecond}
	col := stats.NewCollector()
	g, _ := New(&c, col, mem)

	tr := &trace.Trace{Name: "local", PageBytes: c.Memory.PageBytes}
	wt := make(trace.WarpTrace, 100)
	for j := range wt {
		wt[j] = trace.Instr{Kind: trace.Load, Addr: 0} // same line forever
	}
	tr.Warps = append(tr.Warps, wt)
	g.Run(tr)
	if col.L1Hits != 99 || col.L1Misses != 1 {
		t.Fatalf("L1 hits=%d misses=%d, want 99/1", col.L1Hits, col.L1Misses)
	}
	if mem.accesses != 1 {
		t.Fatalf("memory touched %d times, want 1", mem.accesses)
	}
	if g.L1HitRate() < 0.98 {
		t.Fatalf("L1 hit rate %v", g.L1HitRate())
	}
}

func TestL2CatchesL1Evictions(t *testing.T) {
	c := cfg()
	mem := &fixedMem{lat: 100 * sim.Nanosecond}
	col := stats.NewCollector()
	g, _ := New(&c, col, mem)

	// Stream a footprint larger than L1 but smaller than L2, twice: first
	// pass misses everywhere, second pass hits in L2.
	lines := (c.GPU.L1SizeBytes * 4) / c.GPU.LineBytes
	wt := make(trace.WarpTrace, 0, 2*lines)
	for pass := 0; pass < 2; pass++ {
		for j := 0; j < lines; j++ {
			wt = append(wt, trace.Instr{Kind: trace.Load, Addr: uint64(j * c.GPU.LineBytes)})
		}
	}
	tr := &trace.Trace{Name: "l2", PageBytes: c.Memory.PageBytes, Warps: []trace.WarpTrace{wt}}
	g.Run(tr)
	if col.L2Hits == 0 {
		t.Fatal("second pass should hit in L2")
	}
	if mem.accesses >= uint64(2*lines) {
		t.Fatalf("memory accesses %d not filtered by L2", mem.accesses)
	}
}

func TestStoresDoNotBlockWarp(t *testing.T) {
	// A warp issuing stores into a slow memory must finish much faster than
	// the serial store latency: stores commit at L1 and drain in background.
	c := cfg()
	mem := &fixedMem{lat: 10 * sim.Microsecond}
	g := mkGPU(t, &c, mem)
	wt := make(trace.WarpTrace, 50)
	for j := range wt {
		wt[j] = trace.Instr{Kind: trace.Store, Addr: uint64(j) * uint64(c.GPU.LineBytes) * 512}
	}
	tr := &trace.Trace{Name: "st", PageBytes: c.Memory.PageBytes, Warps: []trace.WarpTrace{wt}}
	elapsed := g.Run(tr)
	if elapsed > sim.Microsecond {
		t.Fatalf("stores blocked the warp: %s", elapsed)
	}
}

func TestDirtyL2EvictionsWriteBack(t *testing.T) {
	c := cfg()
	mem := &fixedMem{lat: 50 * sim.Nanosecond}
	g := mkGPU(t, &c, mem)
	// Write a footprint far larger than L2 so dirty lines evict to memory.
	lines := (c.GPU.L2SizeBytes * 2) / c.GPU.LineBytes
	wt := make(trace.WarpTrace, 0, lines)
	for j := 0; j < lines; j++ {
		wt = append(wt, trace.Instr{Kind: trace.Store, Addr: uint64(j * c.GPU.LineBytes)})
	}
	tr := &trace.Trace{Name: "wb", PageBytes: c.Memory.PageBytes, Warps: []trace.WarpTrace{wt}}
	g.Run(tr)
	if mem.writes <= uint64(lines) {
		t.Fatalf("writes = %d, want demand (%d) plus write-backs", mem.writes, lines)
	}
}

func TestDeterministicElapsed(t *testing.T) {
	c := cfg()
	w, _ := config.WorkloadByName("bfsdata")
	tr := trace.Generate(w, &c)
	e1 := mkGPU(t, &c, &fixedMem{lat: 200 * sim.Nanosecond}).Run(tr)
	e2 := mkGPU(t, &c, &fixedMem{lat: 200 * sim.Nanosecond}).Run(tr)
	if e1 != e2 {
		t.Fatalf("nondeterministic run: %s vs %s", e1, e2)
	}
}

func TestFasterMemoryFasterKernel(t *testing.T) {
	c := cfg()
	w, _ := config.WorkloadByName("pagerank")
	c.MaxInstructions = 800
	tr := trace.Generate(w, &c)
	slow := mkGPU(t, &c, &fixedMem{lat: 2 * sim.Microsecond}).Run(tr)
	fast := mkGPU(t, &c, &fixedMem{lat: 50 * sim.Nanosecond}).Run(tr)
	if fast >= slow {
		t.Fatalf("faster memory did not speed up kernel: %s vs %s", fast, slow)
	}
}

func TestEmptyWarpsSkipped(t *testing.T) {
	c := cfg()
	g := mkGPU(t, &c, &fixedMem{lat: sim.Nanosecond})
	tr := &trace.Trace{Name: "empty", PageBytes: c.Memory.PageBytes,
		Warps: []trace.WarpTrace{{}, {}, {trace.Instr{Kind: trace.Compute}}}}
	elapsed := g.Run(tr)
	if elapsed <= 0 {
		t.Fatal("single-instruction trace must advance time")
	}
}

func TestMSHRCoalescesDuplicateMisses(t *testing.T) {
	// Two warps missing on the same line concurrently must generate one
	// memory request when MSHRs are enabled, two when disabled.
	run := func(entries int) (uint64, uint64) {
		c := cfg()
		c.GPU.MSHREntries = entries
		mem := &fixedMem{lat: 10 * sim.Microsecond}
		col := stats.NewCollector()
		g, err := New(&c, col, mem)
		if err != nil {
			t.Fatal(err)
		}
		wt := trace.WarpTrace{{Kind: trace.Load, Addr: 1 << 20}}
		tr := &trace.Trace{Name: "dup", PageBytes: c.Memory.PageBytes,
			Warps: []trace.WarpTrace{wt, wt, wt, wt}}
		g.Run(tr)
		return mem.accesses, g.MSHRMerges
	}
	noMSHR, merges0 := run(0)
	withMSHR, merges1 := run(64)
	if merges0 != 0 {
		t.Fatalf("disabled MSHR recorded %d merges", merges0)
	}
	// Without MSHRs: the first warp misses L2 and issues; the rest hit L2
	// functionally (the line was installed) — but since they run in the
	// same cycle before data returns, the L2 model already filters them.
	// The MSHR case must never issue MORE requests.
	if withMSHR > noMSHR {
		t.Fatalf("MSHR increased memory requests: %d > %d", withMSHR, noMSHR)
	}
	_ = merges1
}

func TestMSHRBoundedEntries(t *testing.T) {
	c := cfg()
	c.GPU.MSHREntries = 2
	mem := &fixedMem{lat: 100 * sim.Microsecond}
	g := mkGPU(t, &c, mem)
	// Many distinct concurrent misses: the 2-entry MSHR must bypass rather
	// than grow unboundedly.
	var warps []trace.WarpTrace
	for i := 0; i < 16; i++ {
		warps = append(warps, trace.WarpTrace{{Kind: trace.Load, Addr: uint64(i) << 20}})
	}
	g.Run(&trace.Trace{Name: "many", PageBytes: c.Memory.PageBytes, Warps: warps})
	if len(g.mshr.entries) > 2 {
		t.Fatalf("MSHR grew to %d entries, bound is 2", len(g.mshr.entries))
	}
}

func TestDetailedNoCContention(t *testing.T) {
	// With the detailed crossbar, a burst of same-port misses serializes at
	// the L2 port and the run is never faster than the constant-latency
	// model.
	run := func(detailed bool) sim.Time {
		c := cfg()
		c.GPU.NoCDetailed = detailed
		g := mkGPU(t, &c, &fixedMem{lat: 100 * sim.Nanosecond})
		var warps []trace.WarpTrace
		for i := 0; i < 64; i++ {
			// All warps hammer lines mapping to one L2 port.
			wt := make(trace.WarpTrace, 10)
			for j := range wt {
				wt[j] = trace.Instr{Kind: trace.Load,
					Addr: uint64((i*10+j)*c.GPU.LineBytes*c.GPU.MemCtrls) * 64}
			}
			warps = append(warps, wt)
		}
		return g.Run(&trace.Trace{Name: "noc", PageBytes: c.Memory.PageBytes, Warps: warps})
	}
	flat := run(false)
	detailed := run(true)
	if detailed < flat {
		t.Fatalf("detailed NoC (%s) finished before the constant model (%s)", detailed, flat)
	}
}

func TestCrossbarAccessor(t *testing.T) {
	c := cfg()
	g := mkGPU(t, &c, &fixedMem{})
	if g.Crossbar() != nil {
		t.Fatal("crossbar must be nil by default")
	}
	c.GPU.NoCDetailed = true
	g2 := mkGPU(t, &c, &fixedMem{})
	if g2.Crossbar() == nil {
		t.Fatal("detailed NoC missing")
	}
}
