// Package gpu models the baseline GPU of Figure 2: streaming
// multiprocessors executing warps in lockstep with a greedy-then-oldest
// style latency-hiding scheduler, per-SM L1D caches, a shared L2, and an
// interconnect to the memory controllers. The model is trace-driven and
// cycle-approximate: each SM issues at most one warp instruction per core
// cycle; memory instructions traverse L1 -> L2 -> memory controller and
// block only their own warp, so resident warps hide memory latency exactly
// as the paper's MacSim configuration does.
//
// Simplifications (documented in DESIGN.md): the L2 is functional with a
// fixed lookup latency (no bank contention — the channel under study is the
// bottleneck), and L1 write-back traffic to L2 is functional-only.
package gpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// MemAccessor is the memory system under the L2 (the hmem controller).
type MemAccessor interface {
	// Access serves a line request arriving at time at and returns when the
	// response is available at the memory controller.
	Access(at sim.Time, addr uint64, write bool) (done sim.Time)
}

// sm is one streaming multiprocessor.
type sm struct {
	issue *sim.Resource // one instruction per core cycle
	l1    *cache.Cache
}

// warpRun is the execution state of one resident warp.
type warpRun struct {
	smIdx int
	tr    trace.WarpTrace
	pc    int
	done  sim.Time
}

// GPU executes traces against a memory system.
type GPU struct {
	cfg   *config.Config
	col   *stats.Collector
	mem   MemAccessor
	eng   *sim.Engine
	sms   []sm
	l2    *cache.Cache
	cycle sim.Time

	// warps is the value-typed execution state of the current kernel's
	// resident warps; events carry an index into it (sim.Handler), so the
	// steady-state issue/retire loop schedules without closure allocation.
	warps []warpRun

	// mshr tracks outstanding L2 line misses when config.GPU.MSHREntries is
	// positive: a second miss to an in-flight line coalesces onto the first
	// request instead of issuing its own (classic MSHR merging). The table
	// is a bounded linear-probe array rather than a map: MSHREntries is
	// small (hardware MSHRs are 32-64 entries), so a scan beats hashing.
	mshr mshrTable

	// MSHRMerges counts coalesced misses for the ablation experiments.
	MSHRMerges uint64

	// xbar is the contention-aware interconnect (nil = constant latency).
	xbar *noc.Crossbar

	live   int
	finish sim.Time
}

// mshrTable is a fixed-capacity set of outstanding line fills. Lookups scan
// linearly; stale entries (fills already completed) are ignored by callers
// comparing against the current time and purged lazily on insertion when
// the table is full — the exact semantics of the map it replaces.
type mshrTable struct {
	entries []mshrEntry
	cap     int
}

type mshrEntry struct {
	line uint64
	done sim.Time
}

// lookup returns the outstanding fill time for a line, if tracked.
func (t *mshrTable) lookup(line uint64) (sim.Time, bool) {
	for i := range t.entries {
		if t.entries[i].line == line {
			return t.entries[i].done, true
		}
	}
	return 0, false
}

// insert records a fill, overwriting a stale entry for the same line. When
// full it first drops entries whose fill completed by now; if still full
// the line is simply not tracked (MSHR bypass).
func (t *mshrTable) insert(line uint64, done, now sim.Time) {
	for i := range t.entries {
		if t.entries[i].line == line {
			t.entries[i].done = done
			return
		}
	}
	if len(t.entries) >= t.cap {
		kept := t.entries[:0]
		for _, e := range t.entries {
			if e.done > now {
				kept = append(kept, e)
			}
		}
		t.entries = kept
	}
	if len(t.entries) < t.cap {
		t.entries = append(t.entries, mshrEntry{line: line, done: done})
	}
}

// New builds a GPU. The memory accessor must not be nil.
func New(cfg *config.Config, col *stats.Collector, mem MemAccessor) (*GPU, error) {
	return NewIn(nil, nil, cfg, col, mem)
}

func l1Name(_ string, i int) string { return fmt.Sprintf("l1-sm%d", i) }
func smName(_ string, i int) string { return fmt.Sprintf("sm%d", i) }

// NewIn is New rebuilding into a recycled GPU: the SM array, per-SM L1s,
// the shared L2, the MSHR table, the warp state and the event engine all
// keep their allocated capacity and are reinitialized in place. Both re
// and pools may be nil (New is NewIn(nil, nil, ...)), so fresh and pooled
// construction share one code path.
func NewIn(re *GPU, pools *sim.Pools, cfg *config.Config, col *stats.Collector, mem MemAccessor) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("gpu: nil memory accessor")
	}
	if col == nil {
		return nil, fmt.Errorf("gpu: nil collector")
	}
	if re == nil {
		re = &GPU{}
	}
	g := re
	sms := g.sms
	if cap(sms) < cfg.GPU.SMs {
		sms = make([]sm, cfg.GPU.SMs)
	} else {
		sms = sms[:cfg.GPU.SMs]
	}
	mshrEntries := g.mshr.entries
	*g = GPU{
		cfg:   cfg,
		col:   col,
		mem:   mem,
		eng:   g.eng,
		cycle: sim.FreqToPeriod(cfg.GPU.CoreFreqHz),
		sms:   sms,
		l2:    g.l2,
		warps: g.warps[:0],
		xbar:  g.xbar,
	}
	for i := range g.sms {
		l1, err := cache.NewIn(g.sms[i].l1, pools.Name("l1-sm", i, l1Name), cfg.GPU.L1SizeBytes, cfg.GPU.L1Ways, cfg.GPU.LineBytes)
		if err != nil {
			return nil, err
		}
		g.sms[i] = sm{issue: pools.Resource(pools.Name("sm", i, smName)), l1: l1}
	}
	l2, err := cache.NewIn(g.l2, "l2", cfg.GPU.L2SizeBytes, cfg.GPU.L2Ways, cfg.GPU.LineBytes)
	if err != nil {
		return nil, err
	}
	g.l2 = l2
	if cfg.GPU.MSHREntries > 0 {
		if cap(mshrEntries) < cfg.GPU.MSHREntries {
			mshrEntries = make([]mshrEntry, 0, cfg.GPU.MSHREntries)
		} else {
			mshrEntries = mshrEntries[:0]
		}
		g.mshr = mshrTable{entries: mshrEntries, cap: cfg.GPU.MSHREntries}
	} else {
		g.mshr = mshrTable{}
	}
	if cfg.GPU.NoCDetailed {
		ncfg := noc.Default()
		ncfg.Ports = cfg.GPU.MemCtrls
		ncfg.HopLatency = cfg.GPU.InterconnectL
		ncfg.FreqHz = cfg.GPU.CoreFreqHz
		xbar, err := noc.NewIn(g.xbar, pools, ncfg)
		if err != nil {
			return nil, err
		}
		g.xbar = xbar
	} else {
		g.xbar = nil
	}
	return g, nil
}

// Crossbar exposes the detailed interconnect when enabled (nil otherwise).
func (g *GPU) Crossbar() *noc.Crossbar { return g.xbar }

// toL2 returns when a request of n bytes issued at time at reaches the L2:
// the constant hop by default, the crossbar traversal when detailed.
func (g *GPU) toL2(at sim.Time, addr uint64, n int) sim.Time {
	if g.xbar == nil {
		return at + g.cfg.GPU.InterconnectL
	}
	return g.xbar.Traverse(at, addr, n, g.cfg.GPU.LineBytes)
}

// Run executes one kernel (trace) to completion and returns the elapsed
// simulated time. Warps are assigned to SMs round-robin.
func (g *GPU) Run(tr *trace.Trace) sim.Time {
	// The engine is reused across runs (and across pooled rebuilds): Reset
	// returns it to time zero with the arena and heap capacity intact,
	// which is observationally identical to a fresh engine.
	if g.eng == nil {
		g.eng = sim.NewEngine()
	} else {
		g.eng.Reset()
	}
	g.finish = 0
	g.live = 0
	g.warps = g.warps[:0]
	for i, wt := range tr.Warps {
		if len(wt) == 0 {
			continue
		}
		g.warps = append(g.warps, warpRun{smIdx: i % len(g.sms), tr: wt})
		g.live++
	}
	for wi := range g.warps {
		g.eng.ScheduleID(0, g, uint64(wi))
	}
	g.eng.Run()
	if g.live != 0 {
		panic(fmt.Sprintf("gpu: %d warps still live after event queue drained", g.live))
	}
	return g.finish
}

// Handle advances warp arg; it is the sim.Handler behind the closure-free
// warp issue/retire events.
func (g *GPU) Handle(arg uint64) { g.step(arg) }

// step advances one warp from the current engine time.
func (g *GPU) step(wi uint64) {
	w := &g.warps[wi]
	now := g.eng.Now()
	if w.pc >= len(w.tr) {
		g.live--
		if now > g.finish {
			g.finish = now
		}
		return
	}
	s := &g.sms[w.smIdx]

	in := w.tr[w.pc]
	if in.Kind == trace.Compute {
		// Batch the run of consecutive compute instructions: k cycles on
		// the issue port.
		k := 0
		for w.pc+k < len(w.tr) && w.tr[w.pc+k].Kind == trace.Compute {
			k++
		}
		w.pc += k
		g.col.Instructions += uint64(k)
		_, end := s.issue.Reserve(now, sim.Time(k)*g.cycle)
		g.eng.ScheduleID(end, g, wi)
		return
	}

	// Memory instruction: one issue slot, then the memory hierarchy.
	w.pc++
	g.col.Instructions++
	write := in.Kind == trace.Store
	_, issued := s.issue.Reserve(now, g.cycle)

	resume := g.memAccess(s, issued, in.Addr, write)
	g.eng.ScheduleID(resume, g, wi)
}

// memAccess walks L1 -> L2 -> memory and returns when the warp may resume.
// Stores resume at L1 commit (write-back caches absorb them); loads resume
// when data returns.
func (g *GPU) memAccess(s *sm, at sim.Time, addr uint64, write bool) sim.Time {
	gcfg := g.cfg.GPU

	r1 := s.l1.Access(addr, write)
	if r1.Hit {
		g.col.L1Hits++
		return at + gcfg.L1Latency
	}
	g.col.L1Misses++
	// L1 dirty victim falls into L2 (functional only).
	if r1.WritebackValid {
		g.l2.Access(r1.Writeback, true)
	}

	l2At := g.toL2(at+gcfg.L1Latency, addr, 16)
	lineAddr := addr / uint64(gcfg.LineBytes) * uint64(gcfg.LineBytes)
	r2 := g.l2.Access(addr, write)
	if r2.Hit {
		g.col.L2Hits++
		done := l2At + gcfg.L2Latency
		if g.mshr.cap > 0 {
			// The line may be resident but still in flight from memory:
			// a hit on it merges onto the outstanding fill (MSHR
			// semantics) instead of returning instantly.
			if fill, ok := g.mshr.lookup(lineAddr); ok && fill > done {
				g.MSHRMerges++
				done = fill
			}
		}
		if write {
			return at + gcfg.L1Latency // store buffered at L1/L2
		}
		return done + gcfg.InterconnectL
	}
	g.col.L2Misses++
	// L2 dirty victim is written back to memory; it occupies the channel
	// but does not block this warp.
	memAt := l2At + gcfg.L2Latency
	if r2.WritebackValid {
		g.mem.Access(memAt, r2.Writeback, true)
	}
	if g.mshr.cap > 0 && !write {
		if done, ok := g.mshr.lookup(lineAddr); ok && done > memAt {
			// Coalesce onto the in-flight miss.
			g.MSHRMerges++
			return done + gcfg.InterconnectL
		}
	}
	done := g.mem.Access(memAt, addr, write)
	if g.mshr.cap > 0 && !write {
		g.mshr.insert(lineAddr, done, memAt)
	}
	if write {
		// Store: the warp resumes once the L1/L2 committed the line; the
		// memory write completes in the background.
		return at + gcfg.L1Latency
	}
	return done + gcfg.InterconnectL
}

// L1HitRate aggregates hit rate across SMs.
func (g *GPU) L1HitRate() float64 {
	var h, m uint64
	for i := range g.sms {
		h += g.sms[i].l1.Hits
		m += g.sms[i].l1.Misses
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// L2HitRate returns the shared L2's hit rate.
func (g *GPU) L2HitRate() float64 { return g.l2.HitRate() }
