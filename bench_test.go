// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation section as testing.B benchmarks — one benchmark per
// artefact, per DESIGN.md's experiment index. The benchmarks use a reduced
// workload subset so `go test -bench=.` completes in minutes; run cmd/ohmfig
// without -quick for the full sweep.
package main

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
)

// benchOpt bounds benchmark cost: a dense and a graph workload, short
// traces. The shapes (who wins, by what factor) match the full runs.
var benchOpt = experiments.Options{
	Workloads:       []string{"lud", "bfsdata"},
	MaxInstructions: 2000,
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3a(benchOpt); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig3b(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig17(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig18(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig19(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20a(b *testing.B) {
	small := experiments.Options{Workloads: []string{"bfsdata"}, MaxInstructions: 1000}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig20a(small); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Fig20b(); len(r.Rows) == 0 {
			b.Fatal("empty BER table")
		}
	}
}

func BenchmarkFig21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig21(benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table2(benchOpt); len(r.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table3(); len(r.Estimates) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkSingleRun measures the cost of one end-to-end platform
// simulation — the unit every experiment above is built from.
func BenchmarkSingleRun(b *testing.B) {
	for _, pm := range []struct {
		p config.Platform
		m config.MemMode
	}{
		{config.OhmBase, config.Planar},
		{config.OhmBW, config.Planar},
		{config.OhmBW, config.TwoLevel},
		{config.Oracle, config.Planar},
	} {
		pm := pm
		b.Run(pm.p.String()+"/"+pm.m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default(pm.p, pm.m)
				cfg.MaxInstructions = 2000
				if _, err := core.RunConfig(cfg, "bfsdata"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchSweep measures the sweep engine itself on a 2x1x2 grid:
// serial vs full worker pool, and a warm content-addressed cache. The
// serial/parallel ratio approaches the core count on multi-core hosts; the
// warm-cache run costs only hashing and JSON decode.
func BenchmarkBatchSweep(b *testing.B) {
	spec := batch.SweepSpec{
		Platforms:       []config.Platform{config.OhmBase, config.OhmBW},
		Modes:           []config.MemMode{config.Planar},
		Workloads:       []string{"lud", "bfsdata"},
		MaxInstructions: 2000,
	}
	b.Run("serial", func(b *testing.B) {
		r := batch.NewRunner(1, nil)
		for i := 0; i < b.N; i++ {
			if _, err := r.RunSpec(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		r := batch.NewRunner(0, nil)
		for i := 0; i < b.N; i++ {
			if _, err := r.RunSpec(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-cache", func(b *testing.B) {
		r := batch.NewRunner(0, batch.NewMemCache())
		if _, err := r.RunSpec(spec); err != nil { // prime
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.RunSpec(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation benches cover the design choices DESIGN.md calls out.

func BenchmarkAblationHotThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHotThreshold(benchOpt, "bfsdata"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStartGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStartGap(benchOpt, "bfsdata"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMSHR(benchOpt, "bfsdata"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationChannelDivision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationChannelDivision(benchOpt, "bfsdata"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPhases(benchOpt, "bfsdata"); err != nil {
			b.Fatal(err)
		}
	}
}
