// Command ohmbatch runs a declarative sweep over the evaluation grid on
// the parallel batch engine with the content-addressed result cache, and
// emits machine-readable results.
//
// Usage:
//
//	ohmbatch                                        # full 7x2x10 paper grid
//	ohmbatch -platforms ohm-base,ohm-bw -modes planar -workloads lud,sssp
//	ohmbatch -waveguides 1,2,4,8 -instr 5000 -format csv -o sweep.csv
//	ohmbatch -set xpoint.write_latency_ns=1200 -set optical.waveguides=1,2,4
//	ohmbatch -spec sweep.json                       # SweepSpec or scenario file
//	ohmbatch -spec scenario.json -validate          # dry-run expand, no simulation
//	ohmbatch -optimize search.json                  # optimizer job over override axes
//	ohmbatch -optimize search.json -validate        # validate + price, run nothing
//	ohmbatch -print-spec -waveguides 1,2 > sweep.json
//	ohmbatch -paths                                 # list overridable config paths
//
// -spec accepts either a SweepSpec grid or a config.Spec scenario document
// ({preset, mode, overrides, workload}) — the same files ohmsim -spec and
// the ohmserve daemon accept. -set adds override axes from the command
// line: a comma-separated value list sweeps that path.
//
// -optimize runs a search spec (see docs/reference/optimizer.md) instead
// of a grid: random search, successive halving or a (μ+λ) evolutionary
// strategy over declared axes, with the analytical twin as the inner loop
// and DES confirmation of the Pareto frontier. The result document is
// byte-identical to what POST /v1/optimize serves for the same (spec,
// seed).
//
// Results are cached under -cache (default .ohmbatch-cache) keyed by a
// hash of the fully-resolved configuration and workload, so re-running a
// spec — or a different spec overlapping it — only simulates new cells.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/prof"
	"repro/internal/search"
)

// multiFlag collects repeatable -set flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ", ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	specPath := flag.String("spec", "", "JSON spec file: a SweepSpec grid or a {preset,mode,overrides,workload} scenario (flags below override its axes)")
	optimizePath := flag.String("optimize", "", "JSON optimizer spec file: search over override axes instead of a grid (see docs/reference/optimizer.md)")
	platforms := flag.String("platforms", "", "comma-separated platforms (empty = all seven)")
	modes := flag.String("modes", "", "comma-separated mode tokens: planar|two-level, optionally +analytical for twin estimates, e.g. planar,planar+analytical (empty = both memory modes, simulated)")
	workloads := flag.String("workloads", "", "comma-separated Table II workloads (empty = all ten)")
	waveguides := flag.String("waveguides", "", "comma-separated optical waveguide counts to sweep (alias for -set optical.waveguides=...)")
	var sets multiFlag
	flag.Var(&sets, "set", "override axis path=value[,value...] (repeatable; see -paths)")
	instr := flag.Int("instr", 0, "instructions per warp (0 = config default)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", ".ohmbatch-cache", "result cache directory (empty disables caching)")
	cacheMax := flag.String("cache-max-bytes", "", "cache byte budget with LRU eviction, e.g. 2GB (empty = unbounded)")
	format := flag.String("format", "json", "output format: json|csv")
	out := flag.String("o", "", "output file (empty = stdout)")
	printSpec := flag.Bool("print-spec", false, "print the resolved spec as JSON and exit without running")
	validate := flag.Bool("validate", false, "validate and dry-run-expand the spec, print the cell summary, run nothing")
	paths := flag.Bool("paths", false, "list the overridable config paths with their types, then exit")
	quiet := flag.Bool("q", false, "suppress the run summary on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *paths {
		for _, p := range config.OverridePaths() {
			fmt.Printf("%-36s %s\n", p.Path, p.Type)
		}
		// Mode is a sweep axis, not an override path: surface it here so
		// the one discoverability surface lists everything settable.
		fmt.Printf("%-36s %s\n", "(axis) -modes / spec \"modes\"",
			`planar|two-level[+analytical] — "+analytical" swaps the event simulator for the closed-form twin`)
		return
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatalf("%v", err)
	}
	stopProfiles = stopProf
	defer stopProf()

	if *optimizePath != "" {
		if *specPath != "" {
			fatalf("-optimize and -spec are mutually exclusive")
		}
		if *format != "json" {
			fatalf("optimizer results are JSON only (format %q not available)", *format)
		}
		runOptimize(*optimizePath, *validate, *workers, *cacheDir, *cacheMax, *out, *quiet)
		return
	}

	spec, err := buildSpec(*specPath, *platforms, *modes, *workloads, *waveguides, sets, *instr)
	if err != nil {
		fatalf("%v", err)
	}
	if *printSpec {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spec); err != nil {
			fatalf("%v", err)
		}
		return
	}

	cells, err := spec.Cells()
	if err != nil {
		fatalf("%v", err)
	}
	if *validate {
		if err := dryRun(cells); err != nil {
			fatalf("%v", err)
		}
		return
	}

	cache, err := openCache(*cacheDir, *cacheMax)
	if err != nil {
		fatalf("%v", err)
	}
	runner := batch.NewRunner(*workers, cache)

	start := time.Now()
	reports, err := runner.Run(cells)
	if err != nil {
		fatalf("%v", err)
	}
	elapsed := time.Since(start)

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = batch.WriteJSON(w, cells, reports)
	case "csv":
		err = batch.WriteCSV(w, cells, reports)
	default:
		err = fmt.Errorf("unknown format %q (json|csv)", *format)
	}
	if err != nil {
		fatalf("%v", err)
	}

	if !*quiet {
		st := runner.Stats()
		fmt.Fprintf(os.Stderr, "ohmbatch: %d cells in %s (%d cached, %d simulated)\n",
			len(cells), elapsed.Round(time.Millisecond), st.Hits, st.Misses)
		if st.PutErrors > 0 {
			fmt.Fprintf(os.Stderr, "ohmbatch: warning: %d results could not be written to the cache\n",
				st.PutErrors)
		}
	}
}

// openCache builds the disk result cache from the -cache / -cache-max-bytes
// flags; an empty dir disables caching.
func openCache(dir, maxBytes string) (batch.Cache, error) {
	if dir == "" {
		return nil, nil
	}
	var budget int64
	if maxBytes != "" {
		b, err := config.ParseBytes(maxBytes)
		if err != nil {
			return nil, fmt.Errorf("-cache-max-bytes: %w", err)
		}
		budget = b
	}
	return batch.NewBoundedDiskCache(dir, budget)
}

// runOptimize is -optimize: load and validate the search spec, then either
// print the dry-run pricing (-validate) or run the optimizer on the local
// executor and emit the canonical result JSON.
func runOptimize(path string, validate bool, workers int, cacheDir, cacheMax, out string, quiet bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var spec search.Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fatalf("%s: %v", path, err)
	}
	if err := spec.Validate(); err != nil {
		fatalf("%s: %v", path, err)
	}
	if validate {
		fmt.Printf("optimizer spec OK: %d axes, %d objectives, algorithm %s\n",
			len(spec.Axes), len(spec.Objectives), spec.Search.WithDefaults().Algorithm)
		fmt.Printf("planned: %d analytical-twin evaluations; Pareto-frontier points are additionally DES-confirmed\n",
			spec.PlannedEvaluations())
		return
	}

	cache, err := openCache(cacheDir, cacheMax)
	if err != nil {
		fatalf("%v", err)
	}
	runner := batch.NewRunner(workers, cache)
	opts := search.Options{Executor: batch.LocalExecutor{Runner: runner}}
	if !quiet {
		opts.OnPhase = func(p search.Progress) {
			switch p.Phase {
			case "search":
				fmt.Fprintf(os.Stderr, "ohmbatch: optimize: generation %d/%d (%d/%d evaluations)\n",
					p.Generation, p.Generations, p.Evaluated, p.Planned)
			case "confirm":
				fmt.Fprintf(os.Stderr, "ohmbatch: optimize: confirming %d frontier points under DES\n",
					p.FrontierSize)
			}
		}
	}
	start := time.Now()
	res, err := search.Run(context.Background(), spec, opts)
	if err != nil {
		fatalf("%v", err)
	}
	elapsed := time.Since(start)

	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := search.WriteJSON(w, res); err != nil {
		fatalf("%v", err)
	}
	if !quiet {
		st := runner.Stats()
		fmt.Fprintf(os.Stderr, "ohmbatch: optimize: %d evaluations, %d frontier points (%d DES-confirmed) in %s (%d cached, %d simulated)\n",
			res.Evaluated, len(res.Frontier), res.Confirmed, elapsed.Round(time.Millisecond), st.Hits, st.Misses)
	}
}

// dryRun is -validate: every cell's config must validate and hash; the
// summary names the expanded axes so CI logs show what a spec covers, and
// the cost line estimates the sweep's compute before anything runs.
func dryRun(cells []batch.Cell) error {
	seen := make(map[string]struct{}, len(cells))
	custom := 0
	for _, c := range cells {
		if c.Exec == config.ExecAnalytical && c.RunFn != nil {
			return fmt.Errorf("cell %d (%s): analytical mode cannot evaluate a custom RunFn closure; drop +analytical or the closure", c.Index, c)
		}
		if err := c.Config.Validate(); err != nil {
			return fmt.Errorf("cell %d (%s): %w", c.Index, c, err)
		}
		key, err := c.Key()
		if err != nil {
			return fmt.Errorf("cell %d (%s): %w", c.Index, c, err)
		}
		seen[key] = struct{}{}
		if c.WorkloadDef != nil {
			custom++
		}
	}
	fmt.Printf("spec OK: %d cells (%d distinct keys", len(cells), len(seen))
	if custom > 0 {
		fmt.Printf(", %d custom-workload cells", custom)
	}
	fmt.Println(")")
	cost := batch.EstimateCost(cells)
	fmt.Printf("estimated cost: ~%s cold (%d des", cost.Estimated.Round(time.Millisecond), cost.DESCells)
	if cost.AnalyticalCells > 0 {
		fmt.Printf(" + %d analytical", cost.AnalyticalCells)
	}
	if cost.ClosureCells > 0 {
		fmt.Printf(" + %d closure (excluded from the estimate)", cost.ClosureCells)
	}
	fmt.Println(" cells; cache hits are free)")
	for i, c := range cells {
		if i == 8 {
			fmt.Printf("  ... %d more\n", len(cells)-i)
			break
		}
		fmt.Printf("  %s\n", c)
	}
	return nil
}

// buildSpec loads the spec file (if any) and applies flag overrides.
func buildSpec(path, platforms, modes, workloads, waveguides string, sets []string, instr int) (batch.SweepSpec, error) {
	var spec batch.SweepSpec
	if path != "" {
		s, err := batch.LoadSpec(path)
		if err != nil {
			return spec, err
		}
		spec = s
	}
	if platforms != "" {
		spec.Platforms = spec.Platforms[:0]
		for _, name := range strings.Split(platforms, ",") {
			p, err := config.ParsePlatform(strings.TrimSpace(name))
			if err != nil {
				return spec, err
			}
			spec.Platforms = append(spec.Platforms, p)
		}
	}
	if modes != "" {
		spec.Modes = spec.Modes[:0]
		spec.Execs = spec.Execs[:0]
		for _, name := range strings.Split(modes, ",") {
			m, e, err := config.ParseModes(strings.TrimSpace(name))
			if err != nil {
				return spec, err
			}
			spec.Modes = append(spec.Modes, m)
			spec.Execs = append(spec.Execs, e)
		}
	}
	if workloads != "" {
		spec.Workloads = spec.Workloads[:0]
		for _, w := range strings.Split(workloads, ",") {
			spec.Workloads = append(spec.Workloads, strings.TrimSpace(w))
		}
	}
	if waveguides != "" {
		spec.Waveguides = spec.Waveguides[:0]
		for _, s := range strings.Split(waveguides, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return spec, fmt.Errorf("bad waveguide count %q", s)
			}
			spec.Waveguides = append(spec.Waveguides, n)
		}
	}
	for _, kv := range sets {
		path, vals, ok := strings.Cut(kv, "=")
		if !ok || strings.TrimSpace(path) == "" || vals == "" {
			return spec, fmt.Errorf("bad -set %q, want path=value[,value...]", kv)
		}
		var axis batch.Axis
		for _, v := range strings.Split(vals, ",") {
			axis = append(axis, strings.TrimSpace(v))
		}
		if spec.Overrides == nil {
			spec.Overrides = batch.Overrides{}
		}
		spec.Overrides[strings.TrimSpace(path)] = axis
	}
	if instr > 0 {
		spec.MaxInstructions = instr
	}
	return spec, nil
}

// stopProfiles flushes any active pprof profiles; fatalf must run it
// because os.Exit skips deferred functions — a profile of a failing run
// is exactly the profile the user wants intact.
var stopProfiles func()

func fatalf(format string, args ...interface{}) {
	if stopProfiles != nil {
		stopProfiles()
	}
	fmt.Fprintf(os.Stderr, "ohmbatch: "+format+"\n", args...)
	os.Exit(1)
}
