// Command ohmsim runs one Ohm-GPU platform on one Table II workload and
// prints the full measurement report: IPC, memory latency, channel
// bandwidth split, migrations, cache behaviour and the energy breakdown.
//
// Usage:
//
//	ohmsim -platform ohm-bw -mode planar -workload pagerank
//	ohmsim -platform oracle -mode two-level -workload lud -instr 40000
//	ohmsim -json -platform ohm-wom -workload sssp
//	ohmsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/prof"
	"repro/internal/stats"
)

func main() {
	platform := flag.String("platform", "ohm-bw", "platform: origin|hetero|ohm-base|auto-rw|ohm-wom|ohm-bw|oracle")
	mode := flag.String("mode", "planar", "memory mode: planar|two-level")
	workload := flag.String("workload", "pagerank", "Table II workload name")
	instr := flag.Int("instr", 0, "instructions per warp (0 = default 20000)")
	waveguides := flag.Int("waveguides", 0, "optical waveguides (0 = default 1)")
	asJSON := flag.Bool("json", false, "emit the full report as JSON instead of the text block")
	list := flag.Bool("list", false, "list platforms, modes and workloads, then exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatalf("%v", err)
	}
	stopProfiles = stopProf
	defer stopProf()

	if *list {
		fmt.Println("platforms: origin hetero ohm-base auto-rw ohm-wom ohm-bw oracle")
		fmt.Println("modes:     planar two-level")
		fmt.Printf("workloads: %s\n", strings.Join(config.WorkloadNames(), " "))
		return
	}

	p, err := config.ParsePlatform(*platform)
	if err != nil {
		fatalf("unknown platform %q (try -list)", *platform)
	}
	m, err := config.ParseMode(*mode)
	if err != nil {
		fatalf("unknown mode %q (planar|two-level)", *mode)
	}

	cfg := config.Default(p, m)
	if *instr > 0 {
		cfg.MaxInstructions = *instr
	}
	if *waveguides > 0 {
		cfg.Optical.Waveguides = *waveguides
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep, err := sys.RunWorkload(*workload)
	if err != nil {
		fatalf("%v (try -list)", err)
	}

	if *asJSON {
		doc := jsonReport{
			Platform: p.String(),
			Mode:     m.String(),
			Workload: *workload,
			Report:   rep,
			Devices: deviceCounters{
				MCReads:        sys.Col.Reads,
				MCWrites:       sys.Col.Writes,
				DRAMReads:      sys.Mem.DRAMReads,
				DRAMWrites:     sys.Mem.DRAMWrites,
				XPointReads:    sys.Mem.XPointReads,
				XPointWrites:   sys.Mem.XPointWrites,
				MigratedBytes:  sys.Col.MigratedBytes,
				DualRouteBytes: sys.Col.DualRouteBytes,
			},
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatalf("%v", err)
		}
		return
	}

	fmt.Printf("platform       %s\n", p)
	fmt.Printf("mode           %s\n", m)
	fmt.Printf("workload       %s\n", *workload)
	fmt.Printf("elapsed        %s\n", rep.Elapsed)
	fmt.Printf("IPC            %.3f\n", rep.IPC)
	fmt.Printf("mem latency    %s (p99 %s)\n", rep.MeanLatency, rep.P99Latency)
	fmt.Printf("mem requests   %d (%d reads / %d writes at MC)\n",
		rep.MemRequests, sys.Col.Reads, sys.Col.Writes)
	fmt.Printf("migrations     %d (%.1f MiB moved, %.1f MiB via dual routes)\n",
		rep.Migrations, float64(sys.Col.MigratedBytes)/(1<<20), float64(sys.Col.DualRouteBytes)/(1<<20))
	fmt.Printf("channel        regular %.1f MiB, copy %.1f MiB (copy busy fraction %.1f%%)\n",
		float64(rep.RegularBytes)/(1<<20), float64(rep.CopyBytes)/(1<<20), 100*rep.CopyFraction)
	fmt.Printf("caches         L1 %.1f%%, L2 %.1f%% hit\n",
		100*rep.Extra["l1-hit-rate"], 100*rep.Extra["l2-hit-rate"])
	fmt.Printf("devices        DRAM %d r / %d w; XPoint %d r / %d w\n",
		sys.Mem.DRAMReads, sys.Mem.DRAMWrites, sys.Mem.XPointReads, sys.Mem.XPointWrites)
	fmt.Println("energy (pJ):")
	total := rep.TotalEnergyPJ()
	for _, k := range sys.Col.EnergyComponents() {
		v := rep.EnergyPJ[k]
		fmt.Printf("  %-14s %14.0f (%.1f%%)\n", k, v, 100*v/total)
	}
	fmt.Printf("  %-14s %14.0f\n", "total", total)
}

// jsonReport is the machine-readable form of one run: the cell identity,
// the full stats.Report, and the device-level counters the text block
// prints from simulator internals.
type jsonReport struct {
	Platform string         `json:"platform"`
	Mode     string         `json:"mode"`
	Workload string         `json:"workload"`
	Report   stats.Report   `json:"report"`
	Devices  deviceCounters `json:"devices"`
}

type deviceCounters struct {
	MCReads        uint64 `json:"mc_reads"`
	MCWrites       uint64 `json:"mc_writes"`
	DRAMReads      uint64 `json:"dram_reads"`
	DRAMWrites     uint64 `json:"dram_writes"`
	XPointReads    uint64 `json:"xpoint_reads"`
	XPointWrites   uint64 `json:"xpoint_writes"`
	MigratedBytes  uint64 `json:"migrated_bytes"`
	DualRouteBytes uint64 `json:"dual_route_bytes"`
}

// stopProfiles flushes any active pprof profiles; fatalf must run it
// because os.Exit skips deferred functions — a profile of a failing run
// is exactly the profile the user wants intact.
var stopProfiles func()

func fatalf(format string, args ...interface{}) {
	if stopProfiles != nil {
		stopProfiles()
	}
	fmt.Fprintf(os.Stderr, "ohmsim: "+format+"\n", args...)
	os.Exit(1)
}
