// Command ohmsim runs one Ohm-GPU scenario — a platform preset on one
// workload, optionally patched by dotted-path overrides — and prints the
// full measurement report: IPC, memory latency, channel bandwidth split,
// migrations, cache behaviour and the energy breakdown.
//
// Usage:
//
//	ohmsim -platform ohm-bw -mode planar -workload pagerank
//	ohmsim -platform oracle -mode two-level -workload lud -instr 40000
//	ohmsim -set xpoint.write_latency_ns=1200 -set gpu.mshr_entries=16
//	ohmsim -spec scenario.json                 # {preset, mode, overrides, workload}
//	ohmsim -spec scenario.json -set seed=7     # flags layer over the file
//	ohmsim -json -platform ohm-wom -workload sssp
//	ohmsim -list
//
// The -spec file is a config.Spec scenario document; its workload may be a
// Table II name or an inline custom definition, so a new platform variant
// or workload is a JSON file, not a Go change. The same file runs under
// `ohmbatch -spec` and `POST /v1/sweeps {"scenario": ...}` with identical
// results and cache keys.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/prof"
	"repro/internal/stats"
	"repro/internal/twin"
)

// multiFlag collects repeatable -set flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ", ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	specPath := flag.String("spec", "", "scenario spec JSON file ({preset, mode, overrides, workload})")
	platform := flag.String("platform", config.DefaultPreset, "platform preset: "+strings.Join(config.PresetNames(), "|"))
	mode := flag.String("mode", "planar", "mode: planar|two-level, +analytical for the closed-form twin (e.g. planar+analytical)")
	workload := flag.String("workload", config.DefaultWorkload, "Table II workload name")
	instr := flag.Int("instr", 0, "instructions per warp (0 = default 20000)")
	waveguides := flag.Int("waveguides", 0, "optical waveguides (0 = default 1)")
	var sets multiFlag
	flag.Var(&sets, "set", "override one config field: -set path=value (repeatable; see docs/reference/spec.md)")
	asJSON := flag.Bool("json", false, "emit the full report as JSON instead of the text block")
	list := flag.Bool("list", false, "list platforms, modes and workloads, then exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatalf("%v", err)
	}
	stopProfiles = stopProf
	defer stopProf()

	if *list {
		fmt.Printf("platforms: %s\n", strings.Join(config.PresetNames(), " "))
		fmt.Println("modes:     planar two-level planar+analytical two-level+analytical")
		fmt.Printf("workloads: %s\n", strings.Join(config.WorkloadNames(), " "))
		return
	}

	spec, err := buildSpec(*specPath, *platform, *mode, *workload, *instr, *waveguides, sets)
	if err != nil {
		fatalf("%v", err)
	}
	sc, err := spec.Resolve()
	if err != nil {
		fatalf("%v (try -list)", err)
	}

	var (
		rep        stats.Report
		devices    *deviceCounters
		components []string
	)
	if sc.Exec == config.ExecAnalytical {
		// The closed-form twin: no event loop, no device objects — the
		// report's per-metric expected error lives in Extra["twin:mape:*"].
		rep = twin.Estimate(&sc.Config, sc.Workload)
		components = make([]string, 0, len(rep.EnergyPJ))
		for k := range rep.EnergyPJ {
			components = append(components, k)
		}
		sort.Strings(components)
	} else {
		sys, err := core.NewSystem(sc.Config)
		if err != nil {
			fatalf("%v", err)
		}
		rep = sys.RunWorkloadDef(sc.Workload)
		components = sys.Col.EnergyComponents()
		devices = &deviceCounters{
			MCReads:        sys.Col.Reads,
			MCWrites:       sys.Col.Writes,
			DRAMReads:      sys.Mem.DRAMReads,
			DRAMWrites:     sys.Mem.DRAMWrites,
			XPointReads:    sys.Mem.XPointReads,
			XPointWrites:   sys.Mem.XPointWrites,
			MigratedBytes:  sys.Col.MigratedBytes,
			DualRouteBytes: sys.Col.DualRouteBytes,
		}
	}

	if *asJSON {
		doc := jsonReport{
			Platform: sc.Config.Platform.String(),
			Mode:     config.ModeString(sc.Config.Mode, sc.Exec),
			Workload: sc.Workload.Name,
			Report:   rep,
			Devices:  devices,
		}
		if sc.Custom {
			w := sc.Workload
			doc.WorkloadDef = &w
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatalf("%v", err)
		}
		return
	}

	fmt.Printf("platform       %s\n", sc.Config.Platform)
	fmt.Printf("mode           %s\n", config.ModeString(sc.Config.Mode, sc.Exec))
	fmt.Printf("workload       %s\n", sc.Workload.Name)
	fmt.Printf("elapsed        %s\n", rep.Elapsed)
	fmt.Printf("IPC            %.3f\n", rep.IPC)
	fmt.Printf("mem latency    %s (p99 %s)\n", rep.MeanLatency, rep.P99Latency)
	if devices != nil {
		fmt.Printf("mem requests   %d (%d reads / %d writes at MC)\n",
			rep.MemRequests, devices.MCReads, devices.MCWrites)
		fmt.Printf("migrations     %d (%.1f MiB moved, %.1f MiB via dual routes)\n",
			rep.Migrations, float64(devices.MigratedBytes)/(1<<20), float64(devices.DualRouteBytes)/(1<<20))
	} else {
		fmt.Printf("mem requests   %d\n", rep.MemRequests)
		fmt.Printf("migrations     %d\n", rep.Migrations)
	}
	fmt.Printf("channel        regular %.1f MiB, copy %.1f MiB (copy busy fraction %.1f%%)\n",
		float64(rep.RegularBytes)/(1<<20), float64(rep.CopyBytes)/(1<<20), 100*rep.CopyFraction)
	fmt.Printf("caches         L1 %.1f%%, L2 %.1f%% hit\n",
		100*rep.Extra["l1-hit-rate"], 100*rep.Extra["l2-hit-rate"])
	if devices != nil {
		fmt.Printf("devices        DRAM %d r / %d w; XPoint %d r / %d w\n",
			devices.DRAMReads, devices.DRAMWrites, devices.XPointReads, devices.XPointWrites)
	}
	fmt.Println("energy (pJ):")
	total := rep.TotalEnergyPJ()
	for _, k := range components {
		v := rep.EnergyPJ[k]
		fmt.Printf("  %-14s %14.0f (%.1f%%)\n", k, v, 100*v/total)
	}
	fmt.Printf("  %-14s %14.0f\n", "total", total)
	if sc.Exec == config.ExecAnalytical {
		fmt.Printf("expected error ipc ±%.0f%%, latency ±%.0f%%, energy ±%.0f%% (calibrated vs the event simulator; see docs/reference/analytical.md)\n",
			100*rep.Extra["twin:mape:ipc"], 100*rep.Extra["twin:mape:mean-latency"], 100*rep.Extra["twin:mape:energy"])
	}
}

// buildSpec assembles the scenario: the -spec file first, then explicit
// flags layered on top (an unset flag never clobbers the file).
func buildSpec(path, platform, mode, workload string, instr, waveguides int, sets []string) (config.Spec, error) {
	var spec config.Spec
	if path != "" {
		s, err := config.LoadSpec(path)
		if err != nil {
			return spec, err
		}
		spec = s
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["platform"] || spec.Preset == "" {
		spec.Preset = platform
	}
	if explicit["mode"] || spec.Mode == "" {
		spec.Mode = mode
	}
	if explicit["workload"] || spec.Workload == nil {
		spec.Workload = &config.WorkloadSpec{Name: workload}
	}
	override := func(p string, v interface{}) {
		if spec.Overrides == nil {
			spec.Overrides = map[string]interface{}{}
		}
		spec.Overrides[p] = v
	}
	if instr > 0 {
		override("max_instructions", instr)
	}
	if waveguides > 0 {
		override("optical.waveguides", waveguides)
	}
	for _, kv := range sets {
		p, v, ok := strings.Cut(kv, "=")
		if !ok || strings.TrimSpace(p) == "" {
			return spec, fmt.Errorf("bad -set %q, want path=value", kv)
		}
		override(strings.TrimSpace(p), strings.TrimSpace(v))
	}
	return spec, nil
}

// jsonReport is the machine-readable form of one run: the cell identity,
// the full stats.Report, and the device-level counters the text block
// prints from simulator internals.
type jsonReport struct {
	Platform    string           `json:"platform"`
	Mode        string           `json:"mode"`
	Workload    string           `json:"workload"`
	WorkloadDef *config.Workload `json:"workload_def,omitempty"`
	Report      stats.Report     `json:"report"`
	// Devices is absent for analytical runs: the twin has no device
	// objects to count events on.
	Devices *deviceCounters `json:"devices,omitempty"`
}

type deviceCounters struct {
	MCReads        uint64 `json:"mc_reads"`
	MCWrites       uint64 `json:"mc_writes"`
	DRAMReads      uint64 `json:"dram_reads"`
	DRAMWrites     uint64 `json:"dram_writes"`
	XPointReads    uint64 `json:"xpoint_reads"`
	XPointWrites   uint64 `json:"xpoint_writes"`
	MigratedBytes  uint64 `json:"migrated_bytes"`
	DualRouteBytes uint64 `json:"dual_route_bytes"`
}

// stopProfiles flushes any active pprof profiles; fatalf must run it
// because os.Exit skips deferred functions — a profile of a failing run
// is exactly the profile the user wants intact.
var stopProfiles func()

func fatalf(format string, args ...interface{}) {
	if stopProfiles != nil {
		stopProfiles()
	}
	fmt.Fprintf(os.Stderr, "ohmsim: "+format+"\n", args...)
	os.Exit(1)
}
