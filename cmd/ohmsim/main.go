// Command ohmsim runs one Ohm-GPU platform on one Table II workload and
// prints the full measurement report: IPC, memory latency, channel
// bandwidth split, migrations, cache behaviour and the energy breakdown.
//
// Usage:
//
//	ohmsim -platform ohm-bw -mode planar -workload pagerank
//	ohmsim -platform oracle -mode two-level -workload lud -instr 40000
//	ohmsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
)

var platformNames = map[string]config.Platform{
	"origin":   config.Origin,
	"hetero":   config.Hetero,
	"ohm-base": config.OhmBase,
	"auto-rw":  config.AutoRW,
	"ohm-wom":  config.OhmWOM,
	"ohm-bw":   config.OhmBW,
	"oracle":   config.Oracle,
}

func main() {
	platform := flag.String("platform", "ohm-bw", "platform: origin|hetero|ohm-base|auto-rw|ohm-wom|ohm-bw|oracle")
	mode := flag.String("mode", "planar", "memory mode: planar|two-level")
	workload := flag.String("workload", "pagerank", "Table II workload name")
	instr := flag.Int("instr", 0, "instructions per warp (0 = default 20000)")
	waveguides := flag.Int("waveguides", 0, "optical waveguides (0 = default 1)")
	list := flag.Bool("list", false, "list platforms, modes and workloads, then exit")
	flag.Parse()

	if *list {
		fmt.Println("platforms: origin hetero ohm-base auto-rw ohm-wom ohm-bw oracle")
		fmt.Println("modes:     planar two-level")
		fmt.Printf("workloads: %s\n", strings.Join(config.WorkloadNames(), " "))
		return
	}

	p, ok := platformNames[strings.ToLower(*platform)]
	if !ok {
		fatalf("unknown platform %q (try -list)", *platform)
	}
	var m config.MemMode
	switch strings.ToLower(*mode) {
	case "planar":
		m = config.Planar
	case "two-level", "twolevel", "2lm":
		m = config.TwoLevel
	default:
		fatalf("unknown mode %q (planar|two-level)", *mode)
	}

	cfg := config.Default(p, m)
	if *instr > 0 {
		cfg.MaxInstructions = *instr
	}
	if *waveguides > 0 {
		cfg.Optical.Waveguides = *waveguides
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep, err := sys.RunWorkload(*workload)
	if err != nil {
		fatalf("%v (try -list)", err)
	}

	fmt.Printf("platform       %s\n", p)
	fmt.Printf("mode           %s\n", m)
	fmt.Printf("workload       %s\n", *workload)
	fmt.Printf("elapsed        %s\n", rep.Elapsed)
	fmt.Printf("IPC            %.3f\n", rep.IPC)
	fmt.Printf("mem latency    %s (p99 %s)\n", rep.MeanLatency, rep.P99Latency)
	fmt.Printf("mem requests   %d (%d reads / %d writes at MC)\n",
		rep.MemRequests, sys.Col.Reads, sys.Col.Writes)
	fmt.Printf("migrations     %d (%.1f MiB moved, %.1f MiB via dual routes)\n",
		rep.Migrations, float64(sys.Col.MigratedBytes)/(1<<20), float64(sys.Col.DualRouteBytes)/(1<<20))
	fmt.Printf("channel        regular %.1f MiB, copy %.1f MiB (copy busy fraction %.1f%%)\n",
		float64(rep.RegularBytes)/(1<<20), float64(rep.CopyBytes)/(1<<20), 100*rep.CopyFraction)
	fmt.Printf("caches         L1 %.1f%%, L2 %.1f%% hit\n",
		100*rep.Extra["l1-hit-rate"], 100*rep.Extra["l2-hit-rate"])
	fmt.Printf("devices        DRAM %d r / %d w; XPoint %d r / %d w\n",
		sys.Mem.DRAMReads, sys.Mem.DRAMWrites, sys.Mem.XPointReads, sys.Mem.XPointWrites)
	fmt.Println("energy (pJ):")
	total := rep.TotalEnergyPJ()
	for _, k := range sys.Col.EnergyComponents() {
		v := rep.EnergyPJ[k]
		fmt.Printf("  %-14s %14.0f (%.1f%%)\n", k, v, 100*v/total)
	}
	fmt.Printf("  %-14s %14.0f\n", "total", total)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "ohmsim: "+format+"\n", args...)
	os.Exit(1)
}
