// Command ohmtrace inspects the synthetic workload generator: it generates
// a Table II workload and prints its measured characteristics (APKI, read
// ratio, footprint, page popularity) so users can verify the calibration or
// explore the knobs.
//
// Usage:
//
//	ohmtrace                      # summary of all ten workloads
//	ohmtrace -workload pagerank   # one workload with a popularity histogram
//	ohmtrace -workload sssp -phases 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/config"
	"repro/internal/trace"
)

func main() {
	workload := flag.String("workload", "", "single workload to inspect (default: all)")
	instr := flag.Int("instr", 8000, "instructions per warp")
	phases := flag.Int("phases", 1, "hot-set phases (see trace.GeneratePhased)")
	flag.Parse()

	cfg := config.Default(config.OhmBase, config.Planar)
	cfg.MaxInstructions = *instr

	if *workload == "" {
		fmt.Printf("%-10s %8s %8s %8s %12s %12s\n",
			"workload", "APKI", "rd", "instrs", "footprint", "uniq-pages")
		for _, w := range config.Workloads() {
			tr := trace.Generate(w, &cfg)
			s := tr.Measure()
			fmt.Printf("%-10s %8.1f %8.2f %8d %10.0fMB %12d\n",
				w.Name, s.APKI, s.ReadRatio, s.Instructions,
				float64(tr.Footprint)/(1<<20), s.UniquePages)
		}
		return
	}

	w, ok := config.WorkloadByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "ohmtrace: unknown workload %q (Table II: %v)\n",
			*workload, config.WorkloadNames())
		os.Exit(1)
	}
	tr := trace.GeneratePhased(w, &cfg, *phases)
	s := tr.Measure()
	fmt.Printf("workload    %s (%s)\n", w.Name, w.Suite)
	fmt.Printf("instrs      %d across %d warps\n", s.Instructions, len(tr.Warps))
	fmt.Printf("APKI        %.1f (Table II target %d)\n", s.APKI, w.APKI)
	fmt.Printf("read ratio  %.2f (target %.2f)\n", s.ReadRatio, w.ReadRatio)
	fmt.Printf("footprint   %.0f MB, %d unique pages touched\n",
		float64(tr.Footprint)/(1<<20), s.UniquePages)

	// Page popularity histogram: how concentrated is the stream?
	counts := map[uint64]int{}
	for _, wt := range tr.Warps {
		for _, in := range wt {
			if in.Kind != trace.Compute {
				counts[in.Addr/uint64(tr.PageBytes)]++
			}
		}
	}
	pop := make([]int, 0, len(counts))
	total := 0
	for _, c := range counts {
		pop = append(pop, c)
		total += c
	}
	sort.Sort(sort.Reverse(sort.IntSlice(pop)))
	fmt.Println("page popularity (cumulative share of accesses):")
	for _, pct := range []int{1, 5, 10, 25, 50} {
		n := len(pop) * pct / 100
		if n == 0 {
			n = 1
		}
		sum := 0
		for _, c := range pop[:n] {
			sum += c
		}
		fmt.Printf("  top %2d%% of pages -> %5.1f%% of accesses\n",
			pct, 100*float64(sum)/float64(total))
	}
}
