// Command ohmserve is the sweep-as-a-service daemon: a long-running HTTP
// front-end over the parallel batch engine and the experiment registry,
// so figures and sweeps are served from one warm process (and one shared
// result cache) instead of a fresh CLI run each time.
//
// Usage:
//
//	ohmserve                                  # listen on :8080, disk cache
//	ohmserve -addr :9090 -cache '' -job-workers 4
//
// Example session:
//
//	curl -s -X POST localhost:8080/v1/sweeps \
//	    -d '{"experiment":"fig16","params":{"quick":true}}'   # -> {"id":"job-000001",...}
//	curl -s localhost:8080/v1/jobs/job-000001                 # poll per-cell progress
//	curl -s localhost:8080/v1/jobs/job-000001/result          # ohmfig-identical JSON
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"spec":{"modes":["planar"]}}'
//	curl -s localhost:8080/v1/jobs/job-000002/result?format=csv
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000002       # cancel
//	curl -s localhost:8080/v1/experiments                     # registered drivers
//
// SIGINT/SIGTERM drains gracefully: intake stops, queued and running jobs
// get -drain-timeout to finish, then whatever remains is cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/serve"
)

func main() {
	def := config.DefaultServe()
	addr := flag.String("addr", def.Addr, "HTTP listen address")
	cacheDir := flag.String("cache", def.CacheDir, "result cache directory (empty = in-memory only)")
	jobWorkers := flag.Int("job-workers", def.JobWorkers, "jobs executing concurrently")
	queueDepth := flag.Int("queue", def.QueueDepth, "max queued jobs before submissions get 503")
	cellWorkers := flag.Int("cell-workers", def.CellWorkers, "process-wide concurrent simulations (0 = GOMAXPROCS)")
	history := flag.Int("job-history", def.JobHistory, "finished jobs kept queryable before eviction")
	drain := flag.Duration("drain-timeout", def.DrainTimeout, "graceful drain budget on SIGTERM")
	flag.Parse()

	var cache batch.Cache = batch.NewMemCache()
	if *cacheDir != "" {
		dc, err := batch.NewDiskCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ohmserve: %v\n", err)
			os.Exit(1)
		}
		cache = dc
	}
	runner := batch.NewRunner(*cellWorkers, cache)
	manager := serve.NewManager(runner, *jobWorkers, *queueDepth)
	manager.Retain = *history

	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(manager)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("ohmserve: listening on %s (cache=%s, job-workers=%d, queue=%d)",
		*addr, cacheLabel(*cacheDir), *jobWorkers, *queueDepth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("ohmserve: %v received, draining (budget %s)", s, *drain)
	case err := <-errCh:
		log.Fatalf("ohmserve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("ohmserve: http shutdown: %v", err)
	}
	manager.Shutdown(ctx)
	st := runner.Stats()
	log.Printf("ohmserve: drained (cache hits=%d shared=%d simulated=%d)", st.Hits, st.Shared, st.Misses)
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
