// Command ohmserve is the sweep-as-a-service daemon: a long-running HTTP
// front-end over the parallel batch engine and the experiment registry,
// so figures and sweeps are served from one warm process (and one shared
// result cache) instead of a fresh CLI run each time.
//
// Every ohmserve is also a coordinator: worker processes can join at any
// time and sweep cells fan out across them, with every result flowing
// back into the coordinator's content-addressed cache. A worker is the
// same binary pointed at a coordinator.
//
// Usage:
//
//	ohmserve                                  # listen on :8080, disk cache
//	ohmserve -addr :9090 -cache '' -job-workers 4
//	ohmserve -worker -join http://host:8080   # lease cells from a coordinator
//	ohmserve -log-json -pprof 127.0.0.1:6060  # machine logs + profiling
//
// Example session:
//
//	curl -s -X POST localhost:8080/v1/sweeps \
//	    -d '{"experiment":"fig16","params":{"quick":true}}'   # -> {"id":"job-000001",...}
//	curl -s localhost:8080/v1/jobs/job-000001                 # poll per-cell progress
//	curl -s localhost:8080/v1/jobs/job-000001/result          # ohmfig-identical JSON
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"spec":{"modes":["planar"]}}'
//	curl -s localhost:8080/v1/jobs/job-000002/result?format=csv
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000002       # cancel
//	curl -s localhost:8080/v1/experiments                     # registered drivers
//	curl -s localhost:8080/metrics                            # Prometheus exposition
//
// Observability: structured logs (key=value, or JSON with -log-json) go to
// stderr; GET /metrics serves the Prometheus text exposition (coordinators
// on the API address, workers on -metrics-addr); -pprof starts a
// net/http/pprof listener in either mode.
//
// SIGINT/SIGTERM drains gracefully: a coordinator stops intake and gives
// queued and running jobs -drain-timeout to finish; a worker deregisters,
// which requeues its in-flight cells on the coordinator immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	def := config.DefaultServe()
	addr := flag.String("addr", def.Addr, "HTTP listen address")
	cacheDir := flag.String("cache", def.CacheDir, "result cache directory (empty = in-memory only)")
	cacheMax := flag.String("cache-max-bytes", "", "disk cache byte budget with LRU eviction, e.g. 2GB or 512MiB (empty = unbounded)")
	journalPath := flag.String("journal", def.JournalPath, "durable job journal path; 'auto' = <cache>/journal.jsonl, empty = disabled")
	tenantRate := flag.Float64("tenant-rate", def.TenantRate, "per-tenant sustained submissions/second (<=0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", def.TenantBurst, "per-tenant submission burst depth (<=0 = derived from -tenant-rate)")
	tenantMaxJobs := flag.Int("tenant-max-jobs", def.TenantMaxJobs, "per-tenant cap on live jobs (<=0 = unlimited)")
	tenantMaxCells := flag.Int("tenant-max-cells", def.TenantMaxCells, "per-tenant cap on outstanding sweep cells (<=0 = unlimited)")
	jobWorkers := flag.Int("job-workers", def.JobWorkers, "jobs executing concurrently")
	queueDepth := flag.Int("queue", def.QueueDepth, "max queued jobs before submissions get 503")
	cellWorkers := flag.Int("cell-workers", def.CellWorkers, "process-wide concurrent simulations (0 = GOMAXPROCS)")
	history := flag.Int("job-history", def.JobHistory, "finished jobs kept queryable before eviction")
	drain := flag.Duration("drain-timeout", def.DrainTimeout, "graceful drain budget on SIGTERM")
	leaseTTL := flag.Duration("lease-ttl", def.LeaseTTL, "cell lease lifetime without a worker heartbeat")
	leasePoll := flag.Duration("lease-poll", def.LeasePoll, "worker lease long-poll bound")
	localCells := flag.Int("local-cells", def.LocalCells, "cells the coordinator runs itself (0 = cell-workers, negative = dispatch only)")
	worker := flag.Bool("worker", false, "run as a worker: lease cells from -join instead of serving jobs")
	join := flag.String("join", "", "coordinator base URL for -worker mode, e.g. http://host:8080")
	workerName := flag.String("worker-name", "", "worker label in coordinator logs (default: hostname)")
	workerCap := flag.Int("worker-capacity", def.WorkerCapacity, "cells a worker runs concurrently (0 = GOMAXPROCS)")
	pprofAddr := flag.String("pprof", def.PprofAddr, "net/http/pprof listen address (empty = disabled)")
	metricsAddr := flag.String("metrics-addr", def.MetricsAddr, "standalone /metrics listen address (worker mode; coordinators serve /metrics on -addr)")
	logLevel := flag.String("log-level", def.LogLevel, "minimum log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", def.LogJSON, "emit logs as JSON lines instead of key=value text")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ohmserve: %v\n", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, *logJSON)

	if *pprofAddr != "" {
		bound, stopPprof, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			logger.Error("pprof listener failed", "addr", *pprofAddr, "err", err)
			os.Exit(1)
		}
		defer stopPprof()
		logger.Info("pprof listening", "addr", bound)
	}

	var cacheBudget int64
	if *cacheMax != "" {
		cacheBudget, err = config.ParseBytes(*cacheMax)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ohmserve: -cache-max-bytes: %v\n", err)
			os.Exit(2)
		}
	}
	var cache batch.Cache = batch.NewMemCache()
	if *cacheDir != "" {
		dc, err := batch.NewBoundedDiskCache(*cacheDir, cacheBudget)
		if err != nil {
			logger.Error("cache init failed", "err", err)
			os.Exit(1)
		}
		cache = dc
	}
	runner := batch.NewRunner(*cellWorkers, cache)

	if *worker {
		runWorker(logger, runner, *join, *workerName, *workerCap, *cacheDir, *metricsAddr)
		return
	}

	dispatcher := dist.NewDispatcher(runner)
	dispatcher.LeaseTTL = *leaseTTL
	dispatcher.LeasePoll = *leasePoll
	dispatcher.LocalSlots = *localCells
	dispatcher.Logger = logger

	manager := serve.NewManager(runner, *jobWorkers, *queueDepth)
	manager.Retain = *history
	manager.Executor = dispatcher
	manager.Logger = logger
	if *tenantRate > 0 || *tenantMaxJobs > 0 || *tenantMaxCells > 0 {
		manager.Admission = serve.NewAdmission(serve.AdmissionConfig{
			Rate:     *tenantRate,
			Burst:    *tenantBurst,
			MaxJobs:  *tenantMaxJobs,
			MaxCells: *tenantMaxCells,
		})
	}

	// "auto" keeps the journal next to the cache it pairs with: replayed
	// jobs re-run warm only against the same cache directory. A
	// memory-only cache has no durable home, so auto disables the journal.
	jpath := *journalPath
	if jpath == "auto" {
		jpath = ""
		if *cacheDir != "" {
			jpath = filepath.Join(*cacheDir, "journal.jsonl")
		}
	}
	if jpath != "" {
		journal, replayed, err := serve.OpenJournal(jpath)
		if err != nil {
			logger.Error("journal open failed", "path", jpath, "err", err)
			os.Exit(1)
		}
		manager.Journal = journal
		manager.Recover(replayed)
		defer journal.Close()
		logger.Info("journal open", "path", jpath, "replayed_jobs", len(replayed))
	}

	mux := http.NewServeMux()
	dist.Register(mux, dispatcher)
	mux.Handle("/", serve.NewHandler(manager))

	// Instrument wraps the combined mux exactly once, at the edge, so the
	// API and the worker protocol share one set of HTTP metrics and one
	// access log without double counting.
	//
	// ReadHeaderTimeout evicts slowloris clients; IdleTimeout reaps idle
	// keep-alives. No WriteTimeout: the worker lease route long-polls up
	// to -lease-poll and result downloads can be large, so a blanket
	// write deadline would sever legitimate responses.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.Instrument(logger, mux),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("ohmserve listening",
		"addr", *addr, "cache", cacheLabel(*cacheDir),
		"job_workers", *jobWorkers, "queue", *queueDepth, "lease_ttl", leaseTTL.String())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("signal received, draining", "signal", s.String(), "budget", drain.String())
	case err := <-errCh:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err)
	}
	manager.Shutdown(ctx)
	dispatcher.Close()
	st := runner.Stats()
	ds := dispatcher.Stats()
	logger.Info("ohmserve drained",
		"cache_hits", st.Hits, "shared", st.Shared, "simulated", st.Misses,
		"remote", ds.RemoteCompleted, "requeued", ds.Requeued, "stolen", ds.Stolen)
}

// runWorker joins a coordinator and leases cells until SIGTERM, which
// deregisters so in-flight cells requeue immediately.
func runWorker(logger *slog.Logger, runner *batch.Runner, join, name string, capacity int, cacheDir, metricsAddr string) {
	if join == "" {
		fmt.Fprintln(os.Stderr, "ohmserve: -worker requires -join <coordinator url>")
		os.Exit(2)
	}
	if name == "" {
		name, _ = os.Hostname()
	}
	if metricsAddr != "" {
		// Workers have no API listener, so /metrics (plus a trivial
		// liveness probe) gets its own.
		mmux := http.NewServeMux()
		mmux.Handle("GET /metrics", obs.Handler())
		mmux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		// Same slowloris/idle protection as the API listener; metrics
		// responses are small, so a write deadline is safe here too.
		msrv := &http.Server{
			Addr:              metricsAddr,
			Handler:           mmux,
			ReadHeaderTimeout: 5 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("metrics listener failed", "addr", metricsAddr, "err", err)
			}
		}()
		defer msrv.Close()
		logger.Info("worker metrics listening", "addr", metricsAddr)
	}
	w := &dist.Worker{
		Coordinator: join,
		Runner:      runner,
		Capacity:    capacity,
		Name:        name,
		Logger:      logger,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("worker joining",
		obs.KeyWorker, name, "coordinator", join,
		"cache", cacheLabel(cacheDir), "capacity", capacity)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Error("worker failed", "err", err)
		os.Exit(1)
	}
	st := runner.Stats()
	logger.Info("worker stopped", "cache_hits", st.Hits, "simulated", st.Misses)
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
