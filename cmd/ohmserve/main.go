// Command ohmserve is the sweep-as-a-service daemon: a long-running HTTP
// front-end over the parallel batch engine and the experiment registry,
// so figures and sweeps are served from one warm process (and one shared
// result cache) instead of a fresh CLI run each time.
//
// Every ohmserve is also a coordinator: worker processes can join at any
// time and sweep cells fan out across them, with every result flowing
// back into the coordinator's content-addressed cache. A worker is the
// same binary pointed at a coordinator.
//
// Usage:
//
//	ohmserve                                  # listen on :8080, disk cache
//	ohmserve -addr :9090 -cache '' -job-workers 4
//	ohmserve -worker -join http://host:8080   # lease cells from a coordinator
//
// Example session:
//
//	curl -s -X POST localhost:8080/v1/sweeps \
//	    -d '{"experiment":"fig16","params":{"quick":true}}'   # -> {"id":"job-000001",...}
//	curl -s localhost:8080/v1/jobs/job-000001                 # poll per-cell progress
//	curl -s localhost:8080/v1/jobs/job-000001/result          # ohmfig-identical JSON
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"spec":{"modes":["planar"]}}'
//	curl -s localhost:8080/v1/jobs/job-000002/result?format=csv
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000002       # cancel
//	curl -s localhost:8080/v1/experiments                     # registered drivers
//
// SIGINT/SIGTERM drains gracefully: a coordinator stops intake and gives
// queued and running jobs -drain-timeout to finish; a worker deregisters,
// which requeues its in-flight cells on the coordinator immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/batch"
	"repro/internal/config"
	"repro/internal/dist"
	"repro/internal/serve"
)

func main() {
	def := config.DefaultServe()
	addr := flag.String("addr", def.Addr, "HTTP listen address")
	cacheDir := flag.String("cache", def.CacheDir, "result cache directory (empty = in-memory only)")
	jobWorkers := flag.Int("job-workers", def.JobWorkers, "jobs executing concurrently")
	queueDepth := flag.Int("queue", def.QueueDepth, "max queued jobs before submissions get 503")
	cellWorkers := flag.Int("cell-workers", def.CellWorkers, "process-wide concurrent simulations (0 = GOMAXPROCS)")
	history := flag.Int("job-history", def.JobHistory, "finished jobs kept queryable before eviction")
	drain := flag.Duration("drain-timeout", def.DrainTimeout, "graceful drain budget on SIGTERM")
	leaseTTL := flag.Duration("lease-ttl", def.LeaseTTL, "cell lease lifetime without a worker heartbeat")
	leasePoll := flag.Duration("lease-poll", def.LeasePoll, "worker lease long-poll bound")
	localCells := flag.Int("local-cells", def.LocalCells, "cells the coordinator runs itself (0 = cell-workers, negative = dispatch only)")
	worker := flag.Bool("worker", false, "run as a worker: lease cells from -join instead of serving jobs")
	join := flag.String("join", "", "coordinator base URL for -worker mode, e.g. http://host:8080")
	workerName := flag.String("worker-name", "", "worker label in coordinator logs (default: hostname)")
	workerCap := flag.Int("worker-capacity", def.WorkerCapacity, "cells a worker runs concurrently (0 = GOMAXPROCS)")
	flag.Parse()

	var cache batch.Cache = batch.NewMemCache()
	if *cacheDir != "" {
		dc, err := batch.NewDiskCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ohmserve: %v\n", err)
			os.Exit(1)
		}
		cache = dc
	}
	runner := batch.NewRunner(*cellWorkers, cache)

	if *worker {
		runWorker(runner, *join, *workerName, *workerCap, *cacheDir)
		return
	}

	dispatcher := dist.NewDispatcher(runner)
	dispatcher.LeaseTTL = *leaseTTL
	dispatcher.LeasePoll = *leasePoll
	dispatcher.LocalSlots = *localCells

	manager := serve.NewManager(runner, *jobWorkers, *queueDepth)
	manager.Retain = *history
	manager.Executor = dispatcher

	mux := http.NewServeMux()
	dist.Register(mux, dispatcher)
	mux.Handle("/", serve.NewHandler(manager))

	srv := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("ohmserve: listening on %s (cache=%s, job-workers=%d, queue=%d, lease-ttl=%s)",
		*addr, cacheLabel(*cacheDir), *jobWorkers, *queueDepth, *leaseTTL)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("ohmserve: %v received, draining (budget %s)", s, *drain)
	case err := <-errCh:
		log.Fatalf("ohmserve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("ohmserve: http shutdown: %v", err)
	}
	manager.Shutdown(ctx)
	dispatcher.Close()
	st := runner.Stats()
	ds := dispatcher.Stats()
	log.Printf("ohmserve: drained (cache hits=%d shared=%d simulated=%d remote=%d requeued=%d stolen=%d)",
		st.Hits, st.Shared, st.Misses, ds.RemoteCompleted, ds.Requeued, ds.Stolen)
}

// runWorker joins a coordinator and leases cells until SIGTERM, which
// deregisters so in-flight cells requeue immediately.
func runWorker(runner *batch.Runner, join, name string, capacity int, cacheDir string) {
	if join == "" {
		fmt.Fprintln(os.Stderr, "ohmserve: -worker requires -join <coordinator url>")
		os.Exit(2)
	}
	if name == "" {
		name, _ = os.Hostname()
	}
	w := &dist.Worker{
		Coordinator: join,
		Runner:      runner,
		Capacity:    capacity,
		Name:        name,
		Logf:        log.Printf,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("ohmserve: worker %q joining %s (cache=%s, capacity=%d)",
		name, join, cacheLabel(cacheDir), capacity)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("ohmserve: worker: %v", err)
	}
	st := runner.Stats()
	log.Printf("ohmserve: worker stopped (cache hits=%d simulated=%d)", st.Hits, st.Misses)
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
