// Command ohmcompare runs one workload across all seven platforms in both
// memory modes and prints a one-line summary per platform — the quickest
// way to see the paper's platform ladder on a given workload.
//
// Usage:
//
//	ohmcompare [workload]   # default pagerank
package main

import (
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
)

func main() {
	wl := "pagerank"
	if len(os.Args) > 1 {
		wl = os.Args[1]
	}
	for _, m := range config.AllModes() {
		fmt.Println("== mode:", m, "workload:", wl)
		for _, p := range config.AllPlatforms() {
			cfg := config.Default(p, m)
			sys, err := core.NewSystem(cfg)
			if err != nil {
				panic(err)
			}
			rep, err := sys.RunWorkload(wl)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%-9s ipc=%.3f lat=%s copy=%.2f migr=%d xpR=%d reqs=%d",
				p, rep.IPC, rep.MeanLatency, rep.CopyFraction, rep.Migrations,
				sys.Mem.XPointReads, rep.MemRequests)
			if n := rep.Extra["dram-count"]; n > 0 {
				fmt.Printf(" dramLat=%.0fns(%0.f)", rep.Extra["dram-lat-sum"]/n/1000, n)
			}
			if n := rep.Extra["xp-count"]; n > 0 {
				fmt.Printf(" xpLat=%.0fns(%.0f)", rep.Extra["xp-lat-sum"]/n/1000, n)
			}
			if v := rep.Extra["conflict-wait"]; v > 0 {
				fmt.Printf(" confl=%.0fus", v/1e6)
			}
			fmt.Println()
		}
	}
}
