// Command ohmfig regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	ohmfig                      # every figure and table (slow: full sweep)
//	ohmfig fig16 fig17          # selected figures
//	ohmfig -quick fig8          # reduced workloads / trace length
//	ohmfig -workloads lud,sssp -instr 5000 fig18
//
// Recognised ids: fig3a fig3b fig8 fig16 fig17 fig18 fig19 fig20a fig20b
// fig21 table2 table3, plus the ablations abl-threshold abl-pagesize
// abl-startgap abl-mshr abl-division abl-phases, and endurance (pass -workloads to pick
// the ablation workload; the first one is used).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

// renderer is any experiment result.
type renderer interface{ Render() string }

func main() {
	quick := flag.Bool("quick", false, "reduced workload set and trace length")
	workloads := flag.String("workloads", "", "comma-separated workload subset")
	instr := flag.Int("instr", 0, "instructions per warp (0 = default)")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of tables")
	flag.Parse()

	opt := experiments.Options{MaxInstructions: *instr}
	if *quick {
		opt.Workloads = []string{"lud", "bfsdata", "pagerank"}
		if opt.MaxInstructions == 0 {
			opt.MaxInstructions = 4000
		}
	}
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"table2", "table3", "fig3a", "fig3b", "fig8", "fig16",
			"fig17", "fig18", "fig19", "fig20a", "fig20b", "fig21"}
	}

	for _, id := range ids {
		r, err := run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ohmfig: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]interface{}{"id": id, "result": r}); err != nil {
				fmt.Fprintf(os.Stderr, "ohmfig: %s: %v\n", id, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Println(r.Render())
	}
}

func run(id string, opt experiments.Options) (renderer, error) {
	switch strings.ToLower(id) {
	case "fig3a":
		return experiments.Fig3a(opt)
	case "fig3b":
		return experiments.Fig3b(opt)
	case "fig8":
		return experiments.Fig8(opt)
	case "fig16":
		return experiments.Fig16(opt)
	case "fig17":
		return experiments.Fig17(opt)
	case "fig18":
		return experiments.Fig18(opt)
	case "fig19":
		return experiments.Fig19(opt)
	case "fig20a":
		return experiments.Fig20a(opt)
	case "fig20b":
		return experiments.Fig20b(), nil
	case "fig21":
		return experiments.Fig21(opt)
	case "table2":
		return experiments.Table2(opt), nil
	case "table3":
		return experiments.Table3(), nil
	case "abl-threshold":
		return experiments.AblationHotThreshold(opt, ablWorkload(opt))
	case "abl-pagesize":
		return experiments.AblationPageSize(opt, ablWorkload(opt))
	case "abl-startgap":
		return experiments.AblationStartGap(opt, ablWorkload(opt))
	case "abl-mshr":
		return experiments.AblationMSHR(opt, ablWorkload(opt))
	case "abl-division":
		return experiments.AblationChannelDivision(opt, ablWorkload(opt))
	case "abl-noc":
		return experiments.AblationNoC(opt, ablWorkload(opt))
	case "abl-phases":
		return experiments.AblationPhases(opt, ablWorkload(opt))
	case "endurance":
		return experiments.Endurance(opt, ablWorkload(opt))
	default:
		return nil, fmt.Errorf("unknown experiment id (fig3a fig3b fig8 fig16 fig17 fig18 fig19 fig20a fig20b fig21 table2 table3 abl-*)")
	}
}

// ablWorkload picks the ablation workload: the first selected workload, or
// pagerank.
func ablWorkload(opt experiments.Options) string {
	if len(opt.Workloads) > 0 {
		return opt.Workloads[0]
	}
	return "pagerank"
}
