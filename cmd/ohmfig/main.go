// Command ohmfig regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	ohmfig                      # every figure and table (slow: full sweep)
//	ohmfig fig16 fig17          # selected figures
//	ohmfig -quick fig8          # reduced workloads / trace length
//	ohmfig -workloads lud,sssp -instr 5000 fig18
//	ohmfig -list                # print every registered experiment id
//
// Experiment ids resolve through the internal/experiments registry — the
// same registry the ohmserve daemon exposes over HTTP — so `ohmfig <id>`
// and `POST /v1/sweeps {"experiment": "<id>"}` run identical drivers; with
// -json the output bytes match the daemon's result endpoint exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced workload set and trace length")
	workloads := flag.String("workloads", "", "comma-separated workload subset")
	instr := flag.Int("instr", 0, "instructions per warp (0 = default)")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of tables")
	list := flag.Bool("list", false, "list registered experiment ids and exit")
	flag.Parse()

	if *list {
		for _, d := range experiments.Drivers() {
			fmt.Printf("%-14s %s\n", d.ID, d.Title)
		}
		return
	}

	p := experiments.Params{Quick: *quick, MaxInstructions: *instr}
	if *workloads != "" {
		p.Workloads = strings.Split(*workloads, ",")
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"table2", "table3", "fig3a", "fig3b", "fig8", "fig16",
			"fig17", "fig18", "fig19", "fig20a", "fig20b", "fig21"}
	}

	for _, id := range ids {
		d, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ohmfig: unknown experiment id %q (known: %s)\n",
				id, strings.Join(experiments.IDs(), " "))
			os.Exit(1)
		}
		r, err := d.RunParams(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ohmfig: %s: %v\n", d.ID, err)
			os.Exit(1)
		}
		if *asJSON {
			if err := experiments.EncodeResultJSON(os.Stdout, d.ID, r); err != nil {
				fmt.Fprintf(os.Stderr, "ohmfig: %s: %v\n", d.ID, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Println(r.Render())
	}
}
