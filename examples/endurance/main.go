// Endurance: XPoint wears out under writes (Section II-C), which is why the
// logic-layer controller implements Start-Gap wear levelling and why DRAM
// absorbs write-intensive data. This example projects the XPoint lifetime
// of the write-heaviest Table II workload (backp, 47% writes) across
// platforms and shows Start-Gap's effect on the worst physical line.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	r, err := experiments.Endurance(experiments.Options{MaxInstructions: 6000}, "backp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Render())

	// Start-Gap on vs off, same platform: wear concentration.
	fmt.Println("Start-Gap's effect on the worst line (Ohm-BW, backp):")
	for _, k := range []int{0, 100} {
		cfg := config.Default(config.OhmBW, config.Planar)
		cfg.XPoint.StartGapK = k
		cfg.MaxInstructions = 6000
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.RunWorkload("backp"); err != nil {
			log.Fatal(err)
		}
		var maxWear uint64
		for mc := 0; mc < cfg.GPU.MemCtrls; mc++ {
			if xc := sys.Mem.XPointAt(mc); xc != nil {
				if w := xc.Wear().Max; w > maxWear {
					maxWear = w
				}
			}
		}
		label := fmt.Sprintf("K=%d", k)
		if k == 0 {
			label = "disabled"
		}
		fmt.Printf("  start-gap %-9s -> max wear %d writes\n", label, maxWear)
	}
}
