// Dual routes: the paper's core mechanism, observed directly. In two-level
// mode every DRAM-cache miss migrates a line (fill + possible dirty
// eviction). On the baseline those transfers ride the data route and
// compete with demand; with auto-read/write + reverse-write they move to
// the memory route created by the half-coupled MRRs, and the data route's
// migration share drops to zero (Figure 18's "fully eliminated" bar).
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
)

func main() {
	const workload = "bfsdata"
	fmt.Printf("Two-level mode, %s: where does migration traffic go?\n\n", workload)
	fmt.Printf("%-9s %12s %12s %14s %12s %10s\n",
		"platform", "migrations", "moved(MiB)", "dual-route", "copy-busy", "IPC")

	for _, p := range []config.Platform{config.OhmBase, config.AutoRW, config.OhmWOM, config.OhmBW} {
		cfg := config.Default(p, config.TwoLevel)
		cfg.MaxInstructions = 6000
		sys, err := core.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sys.RunWorkload(workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %12d %12.1f %13.1f%% %11.1f%% %10.3f\n",
			p,
			rep.Migrations,
			float64(sys.Col.MigratedBytes)/(1<<20),
			pct(sys.Col.DualRouteBytes, rep.CopyBytes),
			100*rep.CopyFraction,
			rep.IPC)
	}

	fmt.Println("\nThe migration count is identical on every platform — the same misses")
	fmt.Println("happen — but the dual-route platforms carry those bytes on the memory")
	fmt.Println("route, so the data route's copy-busy fraction collapses to zero while")
	fmt.Println("IPC rises.")
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
