// Graph analytics: the paper's motivating scenario. GraphBIG-class
// workloads (pagerank, bfs, sssp...) have huge footprints and hot vertex
// sets — exactly the case heterogeneous memory targets. This example runs
// the graph workloads across the platform ladder in planar mode and prints
// the speedup each Ohm-GPU mechanism contributes, reproducing the Figure 16
// story on the workloads that matter most.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
)

func main() {
	graphs := []string{"bfsdata", "bfstopo", "gctopo", "sssp"}
	ladder := []config.Platform{
		config.Hetero,  // electrical channels, controller-copied migration
		config.OhmBase, // optical channel
		config.AutoRW,  // + snarf-based auto-read/write
		config.OhmWOM,  // + swap & reverse-write over WOM dual routes
		config.OhmBW,   // + half-coupled-MRR transmitters (full bandwidth)
		config.Oracle,  // all-DRAM upper bound
	}

	fmt.Println("Graph analytics on the Ohm-GPU platform ladder (planar mode)")
	fmt.Printf("%-10s", "workload")
	for _, p := range ladder {
		fmt.Printf(" %10s", p)
	}
	fmt.Println("  (IPC normalized to Hetero)")

	for _, w := range graphs {
		base := 0.0
		fmt.Printf("%-10s", w)
		for _, p := range ladder {
			cfg := config.Default(p, config.Planar)
			cfg.MaxInstructions = 6000
			rep, err := core.RunConfig(cfg, w)
			if err != nil {
				log.Fatal(err)
			}
			if p == config.Hetero {
				base = rep.IPC
			}
			fmt.Printf(" %10.2f", rep.IPC/base)
		}
		fmt.Println()
	}
	fmt.Println("\nReading the row left to right shows each mechanism's contribution:")
	fmt.Println("optical channel, auto-read/write, dual-route swap, and full-bandwidth")
	fmt.Println("half-coupled transmitters — with the all-DRAM Oracle as the ceiling.")
}
