// Quickstart: build the paper's best platform (Ohm-BW, planar mode), run
// the pagerank workload, and print the headline numbers. This is the
// smallest complete use of the library's public API:
//
//	config.Default  -> a Table I configuration for a platform + mode
//	core.NewSystem  -> an assembled GPU + Ohm memory system
//	RunWorkload     -> execute a Table II workload, get a stats.Report
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
)

func main() {
	cfg := config.Default(config.OhmBW, config.Planar)
	cfg.MaxInstructions = 8000 // shorten the default 20k-instruction run

	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.RunWorkload("pagerank")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Ohm-GPU quickstart — Ohm-BW, planar memory, pagerank")
	fmt.Printf("  simulated time   %s\n", rep.Elapsed)
	fmt.Printf("  IPC              %.3f\n", rep.IPC)
	fmt.Printf("  memory latency   %s mean, %s p99\n", rep.MeanLatency, rep.P99Latency)
	fmt.Printf("  page migrations  %d (all via the optical dual routes)\n", rep.Migrations)
	fmt.Printf("  channel copy     %.1f%% of data-route bandwidth\n", 100*rep.CopyFraction)

	// Compare against the DRAM-only baseline in one call.
	base, err := core.RunConfig(withInstr(config.Default(config.OhmBase, config.Planar), 8000), "pagerank")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  speedup vs Ohm-base: %.2fx\n", rep.IPC/base.IPC)
}

func withInstr(c config.Config, n int) config.Config {
	c.MaxInstructions = n
	return c
}
