// Waveguide scaling: the Figure 20a sensitivity study as a library
// program. A single optical waveguide already matches the six electrical
// channels' aggregate bandwidth under the same area budget; adding
// waveguides multiplies channel bandwidth, which the electrical design
// cannot do. This sweeps 1-8 waveguides on Ohm-base and Ohm-BW and prints
// performance relative to the electrical Hetero platform.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
)

func main() {
	const workload = "pagerank"
	const instr = 6000

	hetCfg := config.Default(config.Hetero, config.Planar)
	hetCfg.MaxInstructions = instr
	het, err := core.RunConfig(hetCfg, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Performance vs optical waveguides (%s, planar, norm. to Hetero)\n\n", workload)
	fmt.Printf("%-12s %12s %12s\n", "waveguides", "Ohm-base", "Ohm-BW")
	for wg := 1; wg <= 8; wg++ {
		row := make(map[config.Platform]float64, 2)
		for _, p := range []config.Platform{config.OhmBase, config.OhmBW} {
			cfg := config.Default(p, config.Planar)
			cfg.Optical.Waveguides = wg
			cfg.MaxInstructions = instr
			rep, err := core.RunConfig(cfg, workload)
			if err != nil {
				log.Fatal(err)
			}
			row[p] = rep.IPC / het.IPC
		}
		fmt.Printf("%-12d %12.3f %12.3f\n", wg, row[config.OhmBase], row[config.OhmBW])
	}
	fmt.Println("\nOhm-base with several waveguides overtakes the electrical design on")
	fmt.Println("raw bandwidth alone; Ohm-BW adds the dual-route migration machinery")
	fmt.Println("on top (Section VI-B).")
}
