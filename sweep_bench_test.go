package main

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/config"
)

// sweepBenchCells is the small real grid behind BenchmarkSweepCold/Warm:
// four platforms spanning all three channel/migration designs, both memory
// modes and two Table II workloads — 16 cells that together exercise the
// optical and electrical links, planar swap and two-level fill paths, and
// the Origin host path, i.e. every component the run-state pool recycles.
func sweepBenchCells(b *testing.B) []batch.Cell {
	b.Helper()
	spec := batch.SweepSpec{
		Platforms:       []config.Platform{config.Origin, config.Hetero, config.OhmBase, config.OhmBW},
		Modes:           []config.MemMode{config.Planar, config.TwoLevel},
		Workloads:       []string{"lud", "bfsdata"},
		MaxInstructions: 2000,
	}
	cells, err := spec.Cells()
	if err != nil {
		b.Fatal(err)
	}
	return cells
}

// reportSweepMetrics emits the two numbers the benchcheck gate watches:
// sweep throughput in cells/sec and heap allocations per cell (from the
// runtime's allocation counter, so it covers everything the grid does —
// construction, event loop, reporting).
func reportSweepMetrics(b *testing.B, cells int, elapsed time.Duration, m0, m1 *runtime.MemStats) {
	total := float64(b.N * cells)
	if elapsed > 0 {
		b.ReportMetric(total/elapsed.Seconds(), "cells/sec")
	}
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/total, "allocs/cell")
}

// BenchmarkSweepCold runs the grid with no result cache: every cell
// simulates. This is the number the run-state pool moves — after the first
// grid primes the trace registry and the pool, each cell rebuilds its
// platform into recycled arrays instead of reallocating them. Serial
// (Workers=1) so cells/sec and allocs/cell are stable across hosts.
func BenchmarkSweepCold(b *testing.B) {
	cells := sweepBenchCells(b)
	r := batch.NewRunner(1, nil)
	if _, err := r.Run(cells); err != nil { // prime traces + state pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cells); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	reportSweepMetrics(b, len(cells), elapsed, &m0, &m1)
}

// BenchmarkSweepWarm runs the same grid against a warm content-addressed
// cache: no cell simulates, so this measures the sweep engine's fixed
// overhead (key hashing, cache decode, scheduling).
func BenchmarkSweepWarm(b *testing.B) {
	cells := sweepBenchCells(b)
	r := batch.NewRunner(1, batch.NewMemCache())
	if _, err := r.Run(cells); err != nil { // prime the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cells); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	reportSweepMetrics(b, len(cells), elapsed, &m0, &m1)
}
